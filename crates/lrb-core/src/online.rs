//! Online rebalancing: arrivals, departures, and budget-banked rebalances.
//!
//! The paper solves a one-shot rebalance, but its motivating web-farm
//! scenario is online: jobs arrive and depart between rebalance rounds, and
//! migration stays scarce. This module maintains a live instance
//! incrementally — sorted job-key index, per-processor loads, and a
//! [`SizeMultiset`] that keeps the M-PARTITION threshold ladder warm across
//! events — and runs the batch solvers at rebalance events under an
//! *amortized* move budget: a [`MoveBank`] accrues a configurable number of
//! budget units per rebalance event up to a cap, and each rebalance may
//! spend at most `min(requested, banked)` units (the amortized-migration
//! lens of Albers & Hellwig and of Westbrook's earlier formulation).
//!
//! ## Equivalence invariant
//!
//! At any point, [`OnlineRebalancer::instance`] is a plain [`Instance`] and
//! a rebalance is *exactly* a batch solve of that snapshot with the
//! effective budget: the incremental structures (ladder priming, sorted
//! multiset) change only performance, never the answer. Tests replay event
//! streams and assert checkpoint-by-checkpoint bit-identity against
//! from-scratch batch solves; see DESIGN.md §10.
//!
//! ## Migration policies
//!
//! The budget-accrual rule is abstracted behind [`MigrationPolicy`], with
//! three implementations (see DESIGN.md §15):
//!
//! * [`MoveBank`] — fixed accrual per rebalance event up to a cap; the
//!   workspace default and the rebalancer's default type parameter, so all
//!   pre-trait call sites behave bit-identically.
//! * [`ProportionalBank`] — `⌊β·size⌋` credited per *arrival*: the
//!   migration-factor lens of Albers & Hellwig (arXiv:1111.0773).
//! * [`MaackBank`] — the uniform-machine migration-factor variant after
//!   Maack (arXiv:2209.00565), composing with [`crate::hetero::Speeds`];
//!   on equal speeds it is bit-identical to [`ProportionalBank`].

use crate::cost_partition;
use crate::error::{Error, Result};
use crate::incremental::SizeMultiset;
use crate::model::{Budget, Instance, Job, ProcId, Size};
use crate::mpartition;
use crate::outcome::RebalanceOutcome;
use crate::scratch::Scratch;

/// Stable identifier for a live job, chosen by the event source. Keys may be
/// reused after the job departs, but never while it is live.
pub type JobKey = u64;

/// One event in an online stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A new job lands on processor `proc`.
    Arrive { key: JobKey, job: Job, proc: ProcId },
    /// A live job finishes and leaves the system.
    Depart { key: JobKey },
    /// Run the solver with at most `min(budget, banked)` effective budget.
    Rebalance { budget: Budget },
}

/// Accrual policy for the amortized move budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConfig {
    /// Units credited at each rebalance event (before spending).
    pub accrual: u64,
    /// Ceiling on the banked balance; accrual beyond it is forfeited.
    pub cap: u64,
    /// Starting balance (clamped to `cap`).
    pub initial: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accrual: 4,
            cap: 16,
            initial: 4,
        }
    }
}

impl BankConfig {
    /// A bank that never constrains the requested budget.
    pub fn unlimited() -> Self {
        BankConfig {
            accrual: u64::MAX,
            cap: u64::MAX,
            initial: u64::MAX,
        }
    }
}

/// Banked budget units with saturating accrual and audited spending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveBank {
    balance: u64,
    accrual: u64,
    cap: u64,
    total_accrued: u64,
    total_spent: u64,
}

impl MoveBank {
    /// A bank following `cfg`, starting at `cfg.initial` (clamped to cap).
    pub fn new(cfg: BankConfig) -> Self {
        MoveBank {
            balance: cfg.initial.min(cfg.cap),
            accrual: cfg.accrual,
            cap: cfg.cap,
            total_accrued: 0,
            total_spent: 0,
        }
    }

    /// Credit one rebalance event's accrual, forfeiting overflow past cap.
    fn accrue(&mut self) {
        let credited = self.accrual.min(self.cap - self.balance);
        self.balance += credited;
        self.total_accrued = self.total_accrued.saturating_add(credited);
    }

    /// Debit `units`; callers never spend past the balance.
    fn debit(&mut self, units: u64) {
        debug_assert!(units <= self.balance, "bank overdraft");
        self.balance -= units.min(self.balance);
        self.total_spent = self.total_spent.saturating_add(units);
    }

    /// Rebuild a bank from persisted parts (crash recovery). The balance
    /// is clamped to the cap, as `new` would have enforced over any
    /// reachable history.
    pub fn from_parts(
        balance: u64,
        accrual: u64,
        cap: u64,
        total_accrued: u64,
        total_spent: u64,
    ) -> Self {
        MoveBank {
            balance: balance.min(cap),
            accrual,
            cap,
            total_accrued,
            total_spent,
        }
    }

    /// Currently banked units.
    pub fn balance(&self) -> u64 {
        self.balance
    }

    /// Units credited per rebalance event.
    pub fn accrual(&self) -> u64 {
        self.accrual
    }

    /// Ceiling on the banked balance.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Units credited over the bank's lifetime (excluding the initial grant).
    pub fn total_accrued(&self) -> u64 {
        self.total_accrued
    }

    /// Units debited over the bank's lifetime.
    pub fn total_spent(&self) -> u64 {
        self.total_spent
    }
}

/// Budget-accrual policy for online migration: when credit is earned, and
/// how much the rebalancer may spend at a rebalance event.
///
/// Implementations differ only in *when* credit accrues — per rebalance
/// event ([`MoveBank`]) or per arrival, proportional to the arriving job's
/// size ([`ProportionalBank`], [`MaackBank`]). All accounting is
/// integer-only, so every run is exactly reproducible, and the certificate
/// every policy carries is `total_spent ≤ initial grant + total_accrued`
/// (the rebalancer clamps each effective budget to the balance and never
/// overdraws).
pub trait MigrationPolicy: std::fmt::Debug {
    /// Stable policy name for reports and traces.
    fn name(&self) -> &'static str;

    /// Credit earned when a job of `size` arrives. Migration-factor
    /// policies accrue here; [`MoveBank`] does not (a strict no-op, which
    /// keeps the default policy bit-identical to the pre-trait code).
    fn on_arrival(&mut self, size: Size);

    /// Credit earned at a rebalance event, before the requested budget is
    /// clamped. [`MoveBank`] accrues here; migration-factor policies do
    /// not.
    fn on_rebalance(&mut self);

    /// Currently banked budget units.
    fn balance(&self) -> u64;

    /// Debit `units`; the rebalancer never spends past the balance.
    fn spend(&mut self, units: u64);

    /// Units credited over the policy's lifetime (excluding any initial
    /// grant).
    fn total_accrued(&self) -> u64;

    /// Units debited over the policy's lifetime.
    fn total_spent(&self) -> u64;
}

impl MigrationPolicy for MoveBank {
    fn name(&self) -> &'static str {
        "move-bank"
    }

    fn on_arrival(&mut self, _size: Size) {}

    fn on_rebalance(&mut self) {
        self.accrue();
    }

    fn balance(&self) -> u64 {
        self.balance
    }

    fn spend(&mut self, units: u64) {
        self.debit(units);
    }

    fn total_accrued(&self) -> u64 {
        self.total_accrued
    }

    fn total_spent(&self) -> u64 {
        self.total_spent
    }
}

/// Size-proportional migration-factor policy after Albers & Hellwig
/// (arXiv:1111.0773): each arriving job of size `s` credits `⌊β·s⌋` budget
/// units, where `β = beta_num / beta_den` is a rational migration factor.
///
/// Accounting is integer-only (`u128` intermediates, floor division), so
/// the credit schedule is exact and reproducible. There is no cap: the
/// policy's certificate is that lifetime spending never exceeds the credit
/// earned from the sizes that actually arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProportionalBank {
    beta_num: u64,
    beta_den: u64,
    balance: u64,
    total_accrued: u64,
    total_spent: u64,
}

impl ProportionalBank {
    /// A policy with migration factor `beta_num / beta_den`, starting with
    /// an empty balance. A zero denominator is treated as 1.
    pub fn new(beta_num: u64, beta_den: u64) -> Self {
        ProportionalBank {
            beta_num,
            beta_den: beta_den.max(1),
            balance: 0,
            total_accrued: 0,
            total_spent: 0,
        }
    }

    /// The migration factor as a `(numerator, denominator)` pair.
    pub fn beta(&self) -> (u64, u64) {
        (self.beta_num, self.beta_den)
    }

    /// The credit earned by an arrival of `size`: `⌊β·size⌋`.
    fn credit(&self, size: Size) -> u64 {
        let num = u128::from(size).saturating_mul(u128::from(self.beta_num));
        u64::try_from(num / u128::from(self.beta_den)).unwrap_or(u64::MAX)
    }
}

impl MigrationPolicy for ProportionalBank {
    fn name(&self) -> &'static str {
        "proportional"
    }

    fn on_arrival(&mut self, size: Size) {
        let credited = self.credit(size);
        self.balance = self.balance.saturating_add(credited);
        self.total_accrued = self.total_accrued.saturating_add(credited);
    }

    fn on_rebalance(&mut self) {}

    fn balance(&self) -> u64 {
        self.balance
    }

    fn spend(&mut self, units: u64) {
        debug_assert!(units <= self.balance, "policy overdraft");
        self.balance -= units.min(self.balance);
        self.total_spent = self.total_spent.saturating_add(units);
    }

    fn total_accrued(&self) -> u64 {
        self.total_accrued
    }

    fn total_spent(&self) -> u64 {
        self.total_spent
    }
}

/// Uniform-machine migration-factor policy after Maack (arXiv:2209.00565),
/// composing with [`crate::hetero::Speeds`]: an arrival of size `s` credits
/// `⌊β·s·s_max / s_min⌋` units, scaling the size-proportional budget by the
/// fleet's speed spread so that slower machines (which stretch processing
/// times by up to `s_max / s_min`) earn proportionally more migration
/// budget.
///
/// When all speeds are equal the spread is exactly 1 — the numerator and
/// denominator share the common speed factor, so floor division yields
/// `⌊β·s⌋` — and the policy is *bit-identical* to [`ProportionalBank`]
/// with the same β (the same delegation-to-identical idiom the hetero
/// solvers use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaackBank {
    beta_num: u64,
    beta_den: u64,
    speed_min: u64,
    speed_max: u64,
    balance: u64,
    total_accrued: u64,
    total_spent: u64,
}

impl MaackBank {
    /// A policy with migration factor `beta_num / beta_den` over `speeds`
    /// (which are validated non-empty and nonzero by construction). A zero
    /// denominator is treated as 1.
    pub fn new(beta_num: u64, beta_den: u64, speeds: &crate::hetero::Speeds) -> Self {
        let slice = speeds.as_slice();
        MaackBank {
            beta_num,
            beta_den: beta_den.max(1),
            speed_min: slice.iter().copied().min().unwrap_or(1).max(1),
            speed_max: slice.iter().copied().max().unwrap_or(1).max(1),
            balance: 0,
            total_accrued: 0,
            total_spent: 0,
        }
    }

    /// The migration factor as a `(numerator, denominator)` pair.
    pub fn beta(&self) -> (u64, u64) {
        (self.beta_num, self.beta_den)
    }

    /// The `(s_min, s_max)` speed spread the credit rule scales by.
    pub fn speed_spread(&self) -> (u64, u64) {
        (self.speed_min, self.speed_max)
    }

    /// The credit earned by an arrival of `size`:
    /// `⌊size·β·s_max / s_min⌋`, computed in `u128`.
    fn credit(&self, size: Size) -> u64 {
        let num = u128::from(size)
            .saturating_mul(u128::from(self.beta_num))
            .saturating_mul(u128::from(self.speed_max));
        let den = u128::from(self.beta_den) * u128::from(self.speed_min);
        u64::try_from(num / den).unwrap_or(u64::MAX)
    }
}

impl MigrationPolicy for MaackBank {
    fn name(&self) -> &'static str {
        "maack-uniform"
    }

    fn on_arrival(&mut self, size: Size) {
        let credited = self.credit(size);
        self.balance = self.balance.saturating_add(credited);
        self.total_accrued = self.total_accrued.saturating_add(credited);
    }

    fn on_rebalance(&mut self) {}

    fn balance(&self) -> u64 {
        self.balance
    }

    fn spend(&mut self, units: u64) {
        debug_assert!(units <= self.balance, "policy overdraft");
        self.balance -= units.min(self.balance);
        self.total_spent = self.total_spent.saturating_add(units);
    }

    fn total_accrued(&self) -> u64 {
        self.total_accrued
    }

    fn total_spent(&self) -> u64 {
        self.total_spent
    }
}

/// Event and solver counters maintained by the rebalancer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Total events applied (arrivals + departures + rebalances).
    pub events: u64,
    /// Arrive events applied.
    pub arrivals: u64,
    /// Depart events applied.
    pub departures: u64,
    /// Rebalance events applied.
    pub rebalances: u64,
    /// Rebalances that reused the incrementally maintained threshold ladder.
    pub incremental_updates: u64,
    /// Rebalances that rebuilt solver state from scratch.
    pub full_rebuilds: u64,
    /// Jobs actually migrated (solver moves plus forced moves).
    pub moves_performed: u64,
}

/// What one rebalance event did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceStep {
    /// The solver's outcome over the pre-rebalance snapshot.
    pub outcome: RebalanceOutcome,
    /// The budget the event asked for.
    pub requested: Budget,
    /// The budget actually granted: `min(requested, banked)`.
    pub effective: Budget,
    /// Bank balance before this event's accrual.
    pub banked_before: u64,
    /// Bank balance after accrual and spending.
    pub banked_after: u64,
    /// Whether the solver reused the incrementally maintained ladder.
    pub incremental: bool,
}

/// Result of committing an externally solved assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// Jobs whose processor changed.
    pub moves: u64,
    /// Total relocation cost of the moved jobs.
    pub cost: u64,
    /// Bank units debited (moves or cost, per the billed budget's kind).
    pub spent: u64,
}

/// Incrementally maintained online instance with banked-budget rebalancing.
///
/// Jobs are addressed by caller-chosen [`JobKey`]s. Internally the
/// rebalancer keeps parallel arrays sorted by key (so snapshots are
/// canonical regardless of event order within an epoch), per-processor
/// loads, and a [`SizeMultiset`] priming the threshold-ladder cache of its
/// private [`Scratch`].
///
/// The rebalancer is generic over its [`MigrationPolicy`], defaulting to
/// [`MoveBank`] so existing call sites need no type annotation and behave
/// bit-identically to the pre-trait code. Use [`Self::with_policy`] to run
/// a migration-factor policy instead.
#[derive(Debug)]
pub struct OnlineRebalancer<P: MigrationPolicy = MoveBank> {
    num_procs: usize,
    /// Live job keys, ascending; `jobs` and `assignment` are parallel.
    keys: Vec<JobKey>,
    jobs: Vec<Job>,
    assignment: Vec<ProcId>,
    loads: Vec<Size>,
    multiset: SizeMultiset,
    bank: P,
    scratch: Scratch,
    stats: OnlineStats,
}

impl OnlineRebalancer {
    /// An empty online instance over `num_procs` processors with the
    /// default [`MoveBank`] policy following `bank`.
    pub fn new(num_procs: usize, bank: BankConfig) -> Result<Self> {
        Self::with_policy(num_procs, MoveBank::new(bank))
    }

    /// Rebuild a rebalancer from persisted state (crash recovery): the
    /// live jobs with their placements, plus the bank and counters as
    /// snapshotted. Equivalent to arriving every job in order and then
    /// overwriting the audit state — the sorted-key index, loads, and
    /// size multiset are reconstructed exactly, and the threshold-ladder
    /// scratch starts cold (a pure cache, so answers are unaffected).
    pub fn restore(
        num_procs: usize,
        jobs: &[(JobKey, Job, ProcId)],
        bank: MoveBank,
        stats: OnlineStats,
    ) -> Result<Self> {
        let mut r = Self::new(num_procs, BankConfig::default())?;
        for &(key, job, proc) in jobs {
            r.arrive(key, job, proc)?;
        }
        r.bank = bank;
        r.stats = stats;
        Ok(r)
    }
}

impl<P: MigrationPolicy> OnlineRebalancer<P> {
    /// An empty online instance over `num_procs` processors governed by
    /// `policy`.
    pub fn with_policy(num_procs: usize, policy: P) -> Result<Self> {
        if num_procs == 0 {
            return Err(Error::NoProcessors);
        }
        Ok(OnlineRebalancer {
            num_procs,
            keys: Vec::new(),
            jobs: Vec::new(),
            assignment: Vec::new(),
            loads: vec![0; num_procs],
            multiset: SizeMultiset::new(),
            bank: policy,
            scratch: Scratch::new(),
            stats: OnlineStats::default(),
        })
    }

    /// Apply one event; rebalances return their step, other events `None`.
    pub fn apply(&mut self, event: Event) -> Result<Option<RebalanceStep>> {
        match event {
            Event::Arrive { key, job, proc } => self.arrive(key, job, proc).map(|_| None),
            Event::Depart { key } => self.depart(key).map(|_| None),
            Event::Rebalance { budget } => self.rebalance(budget).map(Some),
        }
    }

    /// Admit a new job onto `proc`.
    pub fn arrive(&mut self, key: JobKey, job: Job, proc: ProcId) -> Result<()> {
        let at = match self.keys.binary_search(&key) {
            Ok(_) => return Err(Error::DuplicateJob { key }),
            Err(at) => at,
        };
        if proc >= self.num_procs {
            return Err(Error::ProcOutOfRange {
                job: at,
                proc,
                num_procs: self.num_procs,
            });
        }
        self.keys.insert(at, key);
        self.jobs.insert(at, job);
        self.assignment.insert(at, proc);
        self.loads[proc] = self.loads[proc].saturating_add(job.size);
        self.multiset.insert(job.size);
        self.bank.on_arrival(job.size);
        self.stats.events += 1;
        self.stats.arrivals += 1;
        Ok(())
    }

    /// Retire the live job with `key`, returning it.
    pub fn depart(&mut self, key: JobKey) -> Result<Job> {
        let at = self
            .keys
            .binary_search(&key)
            .map_err(|_| Error::UnknownJob { key })?;
        self.keys.remove(at);
        let job = self.jobs.remove(at);
        let proc = self.assignment.remove(at);
        self.loads[proc] = self.loads[proc].saturating_sub(job.size);
        let removed = self.multiset.remove(job.size);
        debug_assert!(removed, "multiset missing a live job's size");
        self.stats.events += 1;
        self.stats.departures += 1;
        Ok(job)
    }

    /// Accrue the bank and clamp `requested` to the banked balance. Counts
    /// the rebalance event; pair with [`Self::commit_assignment`] when the
    /// solve happens externally (e.g. in the batch engine).
    pub fn begin_rebalance(&mut self, requested: Budget) -> Budget {
        self.stats.events += 1;
        self.stats.rebalances += 1;
        self.bank.on_rebalance();
        match requested {
            Budget::Moves(k) => Budget::Moves((k as u64).min(self.bank.balance()) as usize),
            Budget::Cost(b) => Budget::Cost(b.min(self.bank.balance())),
        }
    }

    /// Install `new_assignment` (solved elsewhere over [`Self::instance`]),
    /// billing the bank in `billing`'s units. Rejects assignments that are
    /// malformed or exceed `billing` without changing any state.
    pub fn commit_assignment(
        &mut self,
        new_assignment: &[ProcId],
        billing: Budget,
    ) -> Result<Commit> {
        if new_assignment.len() != self.keys.len() {
            return Err(Error::AssignmentLength {
                expected: self.keys.len(),
                got: new_assignment.len(),
            });
        }
        let mut moves = 0u64;
        let mut cost = 0u64;
        for (j, (&to, &from)) in new_assignment.iter().zip(&self.assignment).enumerate() {
            if to >= self.num_procs {
                return Err(Error::ProcOutOfRange {
                    job: j,
                    proc: to,
                    num_procs: self.num_procs,
                });
            }
            if to != from {
                moves += 1;
                cost = cost.saturating_add(self.jobs[j].cost);
            }
        }
        let spent = match billing {
            Budget::Moves(k) => {
                if moves > k as u64 {
                    return Err(Error::BudgetExceeded {
                        used: moves,
                        budget: k as u64,
                    });
                }
                moves
            }
            Budget::Cost(b) => {
                if cost > b {
                    return Err(Error::BudgetExceeded {
                        used: cost,
                        budget: b,
                    });
                }
                cost
            }
        };
        for (j, (&to, from)) in new_assignment
            .iter()
            .zip(self.assignment.iter_mut())
            .enumerate()
        {
            if to != *from {
                let size = self.jobs[j].size;
                self.loads[*from] = self.loads[*from].saturating_sub(size);
                self.loads[to] = self.loads[to].saturating_add(size);
                *from = to;
            }
        }
        self.bank.spend(spent);
        self.stats.moves_performed += moves;
        Ok(Commit { moves, cost, spent })
    }

    /// Run a full rebalance event: accrue the bank, solve the current
    /// snapshot with the effective budget, and commit the result.
    ///
    /// `Budget::Moves` solves via [`mpartition`] (and reuses the primed
    /// threshold ladder — an *incremental update*); `Budget::Cost` solves
    /// via [`cost_partition`] (a *full rebuild*, since the cost solver's
    /// knapsack state is not cached across events).
    pub fn rebalance(&mut self, requested: Budget) -> Result<RebalanceStep> {
        let banked_before = self.bank.balance();
        let effective = self.begin_rebalance(requested);
        let inst = self.instance();
        if inst.num_jobs() == 0 {
            let outcome = RebalanceOutcome::unchanged(&inst);
            return Ok(RebalanceStep {
                outcome,
                requested,
                effective,
                banked_before,
                banked_after: self.bank.balance(),
                incremental: false,
            });
        }
        // Prime the ladder from the incrementally maintained multiset so the
        // solver skips its O(n log n) re-sort. This is a pure cache warm-up:
        // a wrong prime would trip the ladder's debug cross-check, and the
        // solve below is bit-identical either way.
        self.scratch
            .ladder
            .prime(self.multiset.fingerprint(), self.multiset.sizes_asc());
        let hits_before = self.scratch.ladder_hits();
        let outcome = match effective {
            Budget::Moves(k) => mpartition::rebalance_scratch(&inst, k, &mut self.scratch)?.outcome,
            Budget::Cost(b) => {
                cost_partition::rebalance_scratch(&inst, b, &mut self.scratch)?.outcome
            }
        };
        let incremental = self.scratch.ladder_hits() > hits_before;
        if incremental {
            self.stats.incremental_updates += 1;
        } else {
            self.stats.full_rebuilds += 1;
        }
        self.commit_assignment(&outcome.assignment().to_vec(), effective)?;
        Ok(RebalanceStep {
            outcome,
            requested,
            effective,
            banked_before,
            banked_after: self.bank.balance(),
            incremental,
        })
    }

    /// Move one live job unconditionally (e.g. evacuating a crashed
    /// processor). Does not touch the bank; bill separately via
    /// [`Self::bill`] if the move should count against the budget.
    pub fn force_move(&mut self, key: JobKey, to: ProcId) -> Result<()> {
        let at = self
            .keys
            .binary_search(&key)
            .map_err(|_| Error::UnknownJob { key })?;
        if to >= self.num_procs {
            return Err(Error::ProcOutOfRange {
                job: at,
                proc: to,
                num_procs: self.num_procs,
            });
        }
        let from = self.assignment[at];
        if from == to {
            return Ok(());
        }
        let size = self.jobs[at].size;
        self.loads[from] = self.loads[from].saturating_sub(size);
        self.loads[to] = self.loads[to].saturating_add(size);
        self.assignment[at] = to;
        self.stats.moves_performed += 1;
        Ok(())
    }

    /// Debit up to `units` from the bank; returns what was actually debited.
    pub fn bill(&mut self, units: u64) -> u64 {
        let debited = units.min(self.bank.balance());
        self.bank.spend(debited);
        debited
    }

    /// A from-scratch [`Instance`] snapshot of the live state, with jobs in
    /// ascending key order (canonical regardless of event arrival order).
    pub fn instance(&self) -> Instance {
        Instance::new(self.jobs.clone(), self.assignment.clone(), self.num_procs)
            // lint: allow(no-panic-core, apply() validates every event, so the state stays well-formed)
            .expect("online state is always a valid instance")
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Number of live jobs.
    pub fn num_jobs(&self) -> usize {
        self.keys.len()
    }

    /// Live job keys, ascending.
    pub fn keys(&self) -> &[JobKey] {
        &self.keys
    }

    /// The live job with `key`, if any.
    pub fn job(&self, key: JobKey) -> Option<&Job> {
        self.keys.binary_search(&key).ok().map(|at| &self.jobs[at])
    }

    /// The processor currently hosting `key`, if live.
    pub fn proc_of(&self, key: JobKey) -> Option<ProcId> {
        self.keys
            .binary_search(&key)
            .ok()
            .map(|at| self.assignment[at])
    }

    /// Current assignment, parallel to [`Self::keys`].
    pub fn assignment(&self) -> &[ProcId] {
        &self.assignment
    }

    /// Current per-processor loads.
    pub fn loads(&self) -> &[Size] {
        &self.loads
    }

    /// Current makespan (0 when no jobs are live).
    pub fn makespan(&self) -> Size {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// The migration policy ([`MoveBank`] by default).
    pub fn bank(&self) -> &P {
        &self.bank
    }

    /// Event and solver counters.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Threshold-ladder cache hits in this rebalancer's private scratch.
    pub fn ladder_hits(&self) -> u64 {
        self.scratch.ladder_hits()
    }

    /// Threshold-ladder cache misses in this rebalancer's private scratch.
    pub fn ladder_misses(&self) -> u64 {
        self.scratch.ladder_misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hetero::Speeds;

    fn arrive(r: &mut OnlineRebalancer, key: JobKey, size: Size, proc: ProcId) {
        r.arrive(key, Job::unit(size), proc).unwrap();
    }

    #[test]
    fn constructor_rejects_zero_processors() {
        assert_eq!(
            OnlineRebalancer::new(0, BankConfig::default()).unwrap_err(),
            Error::NoProcessors
        );
    }

    #[test]
    fn arrivals_and_departures_maintain_loads_and_snapshot() {
        let mut r = OnlineRebalancer::new(2, BankConfig::default()).unwrap();
        arrive(&mut r, 10, 5, 0);
        arrive(&mut r, 3, 4, 1);
        arrive(&mut r, 7, 3, 0);
        assert_eq!(r.loads(), &[8, 4]);
        assert_eq!(r.keys(), &[3, 7, 10]);
        assert_eq!(r.makespan(), 8);

        let inst = r.instance();
        assert_eq!(inst.num_jobs(), 3);
        assert_eq!(inst.initial_loads(), vec![8, 4]);

        let gone = r.depart(7).unwrap();
        assert_eq!(gone.size, 3);
        assert_eq!(r.loads(), &[5, 4]);
        assert_eq!(r.keys(), &[3, 10]);
        assert_eq!(r.stats().events, 4);
        assert_eq!(r.stats().arrivals, 3);
        assert_eq!(r.stats().departures, 1);
    }

    #[test]
    fn duplicate_and_unknown_keys_are_rejected() {
        let mut r = OnlineRebalancer::new(2, BankConfig::default()).unwrap();
        arrive(&mut r, 1, 5, 0);
        assert_eq!(
            r.arrive(1, Job::unit(2), 1).unwrap_err(),
            Error::DuplicateJob { key: 1 }
        );
        assert_eq!(r.depart(99).unwrap_err(), Error::UnknownJob { key: 99 });
        assert!(matches!(
            r.arrive(2, Job::unit(1), 5).unwrap_err(),
            Error::ProcOutOfRange { proc: 5, .. }
        ));
        // Failed events leave state and counters untouched.
        assert_eq!(r.num_jobs(), 1);
        assert_eq!(r.stats().events, 1);
    }

    #[test]
    fn rebalance_matches_batch_solve_of_snapshot() {
        let mut r = OnlineRebalancer::new(2, BankConfig::unlimited()).unwrap();
        for (key, size) in [(0u64, 4u64), (1, 3), (2, 3), (3, 2)] {
            arrive(&mut r, key, size, 0);
        }
        let snapshot = r.instance();
        let step = r.rebalance(Budget::Moves(2)).unwrap();
        let batch = mpartition::rebalance(&snapshot, 2).unwrap();
        assert_eq!(step.outcome, batch.outcome);
        assert_eq!(r.assignment(), batch.outcome.assignment());
        assert_eq!(r.makespan(), batch.outcome.makespan());
        assert_eq!(r.makespan(), 6);
        // The primed ladder made this an incremental update.
        assert!(step.incremental);
        assert_eq!(r.stats().incremental_updates, 1);
        assert_eq!(r.stats().moves_performed, batch.outcome.moves() as u64);
    }

    #[test]
    fn bank_clamps_requested_budget_and_accrues_over_events() {
        let cfg = BankConfig {
            accrual: 1,
            cap: 3,
            initial: 0,
        };
        let mut r = OnlineRebalancer::new(2, cfg).unwrap();
        for (key, size) in [(0u64, 4u64), (1, 3), (2, 3), (3, 2)] {
            arrive(&mut r, key, size, 0);
        }
        // First rebalance: bank accrues to 1, so only one move is allowed.
        let step = r.rebalance(Budget::Moves(4)).unwrap();
        assert_eq!(step.effective, Budget::Moves(1));
        assert!(step.outcome.moves() <= 1);
        assert_eq!(step.banked_before, 0);
        // Idle rebalances accrue the rest up to the cap.
        let step = r.rebalance(Budget::Moves(0)).unwrap();
        assert_eq!(step.outcome.moves(), 0);
        r.rebalance(Budget::Moves(0)).unwrap();
        let step = r.rebalance(Budget::Moves(0)).unwrap();
        assert_eq!(step.banked_after, 3);
        let step = r.rebalance(Budget::Moves(0)).unwrap();
        assert_eq!(step.banked_after, 3); // capped
        let step = r.rebalance(Budget::Moves(4)).unwrap();
        assert_eq!(step.effective, Budget::Moves(3));
    }

    #[test]
    fn cost_budget_rebalance_counts_as_full_rebuild() {
        let mut r = OnlineRebalancer::new(2, BankConfig::unlimited()).unwrap();
        for (key, size, cost) in [(0u64, 4u64, 2u64), (1, 3, 1), (2, 3, 1), (3, 2, 5)] {
            r.arrive(key, Job::with_cost(size, cost), 0).unwrap();
        }
        let snapshot = r.instance();
        let step = r.rebalance(Budget::Cost(3)).unwrap();
        let batch = cost_partition::rebalance(&snapshot, 3).unwrap();
        assert_eq!(step.outcome, batch.outcome);
        assert!(!step.incremental);
        assert_eq!(r.stats().full_rebuilds, 1);
        assert!(snapshot.move_cost(r.assignment()) <= 3);
    }

    #[test]
    fn depart_after_arrive_is_a_no_op_on_snapshot_and_fingerprint() {
        let mut r = OnlineRebalancer::new(3, BankConfig::default()).unwrap();
        arrive(&mut r, 0, 7, 0);
        arrive(&mut r, 1, 2, 1);
        let before_inst = r.instance();
        let before_loads = r.loads().to_vec();
        arrive(&mut r, 50, 9, 2);
        r.depart(50).unwrap();
        assert_eq!(r.instance(), before_inst);
        assert_eq!(r.loads(), &before_loads[..]);
    }

    #[test]
    fn force_move_and_bill_support_evacuations() {
        let cfg = BankConfig {
            accrual: 0,
            cap: 10,
            initial: 5,
        };
        let mut r = OnlineRebalancer::new(2, cfg).unwrap();
        arrive(&mut r, 0, 6, 0);
        r.force_move(0, 1).unwrap();
        assert_eq!(r.loads(), &[0, 6]);
        assert_eq!(r.proc_of(0), Some(1));
        assert_eq!(r.bill(2), 2);
        assert_eq!(r.bank().balance(), 3);
        assert_eq!(r.bill(100), 3); // clamped to balance
        assert_eq!(r.bank().balance(), 0);
        r.force_move(0, 1).unwrap(); // same-proc move is a no-op
        assert_eq!(r.stats().moves_performed, 1);
    }

    #[test]
    fn commit_rejects_malformed_or_over_budget_assignments() {
        let mut r = OnlineRebalancer::new(2, BankConfig::unlimited()).unwrap();
        arrive(&mut r, 0, 4, 0);
        arrive(&mut r, 1, 4, 0);
        assert!(matches!(
            r.commit_assignment(&[1], Budget::Moves(2)).unwrap_err(),
            Error::AssignmentLength { .. }
        ));
        assert!(matches!(
            r.commit_assignment(&[1, 2], Budget::Moves(2)).unwrap_err(),
            Error::ProcOutOfRange { .. }
        ));
        assert!(matches!(
            r.commit_assignment(&[1, 1], Budget::Moves(1)).unwrap_err(),
            Error::BudgetExceeded { .. }
        ));
        // Rejections leave state untouched.
        assert_eq!(r.assignment(), &[0, 0]);
        assert_eq!(r.loads(), &[8, 0]);
        let commit = r.commit_assignment(&[1, 0], Budget::Moves(1)).unwrap();
        assert_eq!((commit.moves, commit.spent), (1, 1));
        assert_eq!(r.loads(), &[4, 4]);
    }

    #[test]
    fn apply_dispatches_all_event_kinds() {
        let mut r = OnlineRebalancer::new(2, BankConfig::unlimited()).unwrap();
        assert!(r
            .apply(Event::Arrive {
                key: 0,
                job: Job::unit(5),
                proc: 0,
            })
            .unwrap()
            .is_none());
        assert!(r
            .apply(Event::Rebalance {
                budget: Budget::Moves(1),
            })
            .unwrap()
            .is_some());
        assert!(r.apply(Event::Depart { key: 0 }).unwrap().is_none());
        assert_eq!(r.stats().events, 3);
    }

    #[test]
    fn restore_round_trips_live_state_bank_and_stats() {
        let cfg = BankConfig {
            accrual: 2,
            cap: 5,
            initial: 1,
        };
        let mut live = OnlineRebalancer::new(3, cfg).unwrap();
        for (key, size, proc) in [(4u64, 7u64, 0), (1, 3, 1), (9, 5, 0), (2, 2, 2)] {
            live.arrive(key, Job::with_cost(size, size / 2), proc)
                .unwrap();
        }
        live.rebalance(Budget::Moves(2)).unwrap();
        live.depart(1).unwrap();

        let persisted: Vec<(JobKey, Job, ProcId)> = live
            .keys()
            .iter()
            .map(|&k| (k, *live.job(k).unwrap(), live.proc_of(k).unwrap()))
            .collect();
        let bank = live.bank().clone();
        let restored =
            OnlineRebalancer::restore(3, &persisted, bank.clone(), *live.stats()).unwrap();

        assert_eq!(restored.instance(), live.instance());
        assert_eq!(restored.loads(), live.loads());
        assert_eq!(restored.keys(), live.keys());
        assert_eq!(restored.bank(), &bank);
        assert_eq!(restored.stats(), live.stats());

        // The restored rebalancer answers future events exactly like the
        // survivor: same rebalance outcome, same bank trajectory.
        let mut a = live;
        let mut b = restored;
        let sa = a.rebalance(Budget::Moves(3)).unwrap();
        let sb = b.rebalance(Budget::Moves(3)).unwrap();
        assert_eq!(sa.outcome, sb.outcome);
        assert_eq!(sa.effective, sb.effective);
        assert_eq!(a.bank(), b.bank());
    }

    #[test]
    fn from_parts_clamps_balance_to_cap() {
        let bank = MoveBank::from_parts(99, 1, 8, 40, 33);
        assert_eq!(bank.balance(), 8);
        assert_eq!(bank.accrual(), 1);
        assert_eq!(bank.cap(), 8);
        assert_eq!(bank.total_accrued(), 40);
        assert_eq!(bank.total_spent(), 33);
    }

    #[test]
    fn empty_rebalance_is_an_unchanged_outcome() {
        let mut r = OnlineRebalancer::new(3, BankConfig::default()).unwrap();
        let step = r.rebalance(Budget::Moves(5)).unwrap();
        assert_eq!(step.outcome.moves(), 0);
        assert_eq!(step.outcome.makespan(), 0);
        assert_eq!(r.stats().rebalances, 1);
    }

    #[test]
    fn with_policy_movebank_is_bit_identical_to_new() {
        let cfg = BankConfig {
            accrual: 1,
            cap: 3,
            initial: 1,
        };
        let mut a = OnlineRebalancer::new(2, cfg).unwrap();
        let mut b = OnlineRebalancer::with_policy(2, MoveBank::new(cfg)).unwrap();
        for (key, size) in [(0u64, 4u64), (1, 3), (2, 3), (3, 2)] {
            arrive(&mut a, key, size, 0);
            arrive(&mut b, key, size, 0);
            let sa = a.rebalance(Budget::Moves(2)).unwrap();
            let sb = b.rebalance(Budget::Moves(2)).unwrap();
            assert_eq!(sa, sb);
            assert_eq!(a.bank(), b.bank());
            assert_eq!(a.assignment(), b.assignment());
            assert_eq!(a.stats(), b.stats());
        }
    }

    #[test]
    fn movebank_trait_view_is_bit_identical_to_inherent_accessors() {
        // Regression for the refactor hazard: the MigrationPolicy surface
        // over MoveBank must agree with the inherent accessors lrb-serve
        // snapshots persist, and arrivals must stay a strict no-op.
        let mut bank = MoveBank::from_parts(99, 3, 8, 40, 33);
        let p: &mut dyn MigrationPolicy = &mut bank;
        assert_eq!(p.name(), "move-bank");
        assert_eq!(p.balance(), 8); // from_parts clamped to cap
        assert_eq!(p.total_accrued(), 40);
        assert_eq!(p.total_spent(), 33);
        p.on_arrival(1_000);
        assert_eq!((p.balance(), p.total_accrued()), (8, 40));
        p.on_rebalance(); // at cap: zero credited
        assert_eq!((p.balance(), p.total_accrued()), (8, 40));
        p.spend(5);
        assert_eq!((p.balance(), p.total_spent()), (3, 38));
        p.on_rebalance(); // accrual 3 fits under the cap again
        assert_eq!((p.balance(), p.total_accrued()), (6, 43));
        assert_eq!(bank.balance(), 6);
        assert_eq!(bank.total_accrued(), 43);
        assert_eq!(bank.total_spent(), 38);
    }

    #[test]
    fn from_parts_restore_round_trip_is_bit_identical_through_the_trait() {
        let cfg = BankConfig {
            accrual: 2,
            cap: 6,
            initial: 3,
        };
        let mut live = OnlineRebalancer::new(2, cfg).unwrap();
        for (key, size) in [(0u64, 5u64), (1, 4), (2, 3), (3, 2)] {
            arrive(&mut live, key, size, 0);
        }
        live.rebalance(Budget::Moves(2)).unwrap();

        // Persist the bank exactly as lrb-serve snapshots do: field by
        // field through the inherent accessors, rebuilt via from_parts.
        let rebuilt = {
            let b = live.bank();
            MoveBank::from_parts(
                b.balance(),
                b.accrual(),
                b.cap(),
                b.total_accrued(),
                b.total_spent(),
            )
        };
        assert_eq!(&rebuilt, live.bank());
        let persisted: Vec<(JobKey, Job, ProcId)> = live
            .keys()
            .iter()
            .map(|&k| (k, *live.job(k).unwrap(), live.proc_of(k).unwrap()))
            .collect();
        let mut restored =
            OnlineRebalancer::restore(2, &persisted, rebuilt, *live.stats()).unwrap();

        // Both twins answer future events identically through the trait.
        let sa = live.rebalance(Budget::Moves(3)).unwrap();
        let sb = restored.rebalance(Budget::Moves(3)).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(live.bank(), restored.bank());
        assert_eq!(live.assignment(), restored.assignment());
    }

    #[test]
    fn proportional_policy_earns_on_arrivals_not_rebalances() {
        let mut p = ProportionalBank::new(3, 2);
        assert_eq!(p.name(), "proportional");
        assert_eq!(p.beta(), (3, 2));
        p.on_arrival(5); // ⌊15/2⌋ = 7
        p.on_arrival(1); // ⌊3/2⌋ = 1
        assert_eq!((p.balance(), p.total_accrued()), (8, 8));
        p.on_rebalance(); // no rebalance accrual
        assert_eq!(p.balance(), 8);
        p.spend(3);
        assert_eq!((p.balance(), p.total_spent()), (5, 3));

        let mut r = OnlineRebalancer::with_policy(2, ProportionalBank::new(1, 1)).unwrap();
        r.arrive(0, Job::with_cost(4, 4), 0).unwrap();
        r.arrive(1, Job::with_cost(3, 3), 0).unwrap();
        assert_eq!(r.bank().balance(), 7);
        let step = r.rebalance(Budget::Cost(u64::MAX)).unwrap();
        assert_eq!(step.effective, Budget::Cost(7));
        assert_eq!(step.banked_before, 7);
        assert!(r.bank().total_spent() <= r.bank().total_accrued());
    }

    #[test]
    fn zero_beta_denominator_is_treated_as_one() {
        let mut p = ProportionalBank::new(2, 0);
        assert_eq!(p.beta(), (2, 1));
        p.on_arrival(3);
        assert_eq!(p.balance(), 6);
        let speeds = Speeds::unit(2).unwrap();
        let m = MaackBank::new(2, 0, &speeds);
        assert_eq!(m.beta(), (2, 1));
    }

    #[test]
    fn maack_on_equal_speeds_is_bit_identical_to_proportional() {
        let speeds = Speeds::uniform(3, 7).unwrap();
        let mut a = OnlineRebalancer::with_policy(3, ProportionalBank::new(3, 2)).unwrap();
        let mut b = OnlineRebalancer::with_policy(3, MaackBank::new(3, 2, &speeds)).unwrap();
        for (key, size, proc) in [(0u64, 9u64, 0), (1, 5, 0), (2, 7, 1), (3, 1, 2), (4, 4, 0)] {
            a.arrive(key, Job::with_cost(size, size), proc).unwrap();
            b.arrive(key, Job::with_cost(size, size), proc).unwrap();
            let sa = a.rebalance(Budget::Cost(u64::MAX)).unwrap();
            let sb = b.rebalance(Budget::Cost(u64::MAX)).unwrap();
            assert_eq!(sa, sb);
            assert_eq!(a.bank().balance(), b.bank().balance());
            assert_eq!(a.bank().total_accrued(), b.bank().total_accrued());
            assert_eq!(a.bank().total_spent(), b.bank().total_spent());
            assert_eq!(a.assignment(), b.assignment());
            assert_eq!(a.loads(), b.loads());
        }
    }

    #[test]
    fn maack_scales_credit_by_the_speed_spread() {
        let speeds = Speeds::new(vec![1, 2, 4]).unwrap();
        let mut m = MaackBank::new(1, 2, &speeds);
        assert_eq!(m.name(), "maack-uniform");
        assert_eq!(m.speed_spread(), (1, 4));
        m.on_arrival(5); // ⌊5·1·4 / (2·1)⌋ = 10
        assert_eq!(m.balance(), 10);
        m.on_rebalance();
        assert_eq!(m.balance(), 10);
        m.spend(4);
        assert_eq!((m.balance(), m.total_spent()), (6, 4));
    }

    #[test]
    fn policies_never_overspend_their_certificate() {
        fn drive<P: MigrationPolicy>(mut r: OnlineRebalancer<P>, initial: u64) {
            for (key, size, proc) in [(0u64, 6u64, 0), (1, 5, 0), (2, 4, 1), (3, 2, 0)] {
                r.arrive(key, Job::with_cost(size, size), proc).unwrap();
                r.rebalance(Budget::Cost(u64::MAX)).unwrap();
            }
            r.bill(3);
            let b = r.bank();
            assert!(
                b.total_spent() <= initial.saturating_add(b.total_accrued()),
                "{} overspent: spent {} > initial {} + accrued {}",
                b.name(),
                b.total_spent(),
                initial,
                b.total_accrued()
            );
        }
        let cfg = BankConfig::default();
        drive(OnlineRebalancer::new(3, cfg).unwrap(), cfg.initial);
        drive(
            OnlineRebalancer::with_policy(3, ProportionalBank::new(1, 1)).unwrap(),
            0,
        );
        let speeds = Speeds::new(vec![2, 3, 5]).unwrap();
        drive(
            OnlineRebalancer::with_policy(3, MaackBank::new(1, 1, &speeds)).unwrap(),
            0,
        );
    }
}
