//! Per-processor size profiles and the discrete threshold set of §3.1.
//!
//! For a makespan guess `T`, the paper classifies a job as **large** when its
//! size is strictly greater than `T/2` (evaluated here as `2·size > T` to
//! stay in integers). Sorting each processor's jobs in ascending size order
//! makes the small jobs a *prefix* of the list for every `T`, so all the
//! quantities PARTITION needs are prefix-sum lookups:
//!
//! * `a_i(T)` — the minimum number of small jobs to remove so the remaining
//!   small jobs total at most `T/2`;
//! * `b_i(T)` — the minimum number of removals (counting a mandatory large
//!   job removal) after which the processor is **large-free** with total
//!   load at most `T`;
//! * `L_T`, `m_L`, `L_E` — the global large-job counts of Definition 1.
//!
//! `b_i` here is the "forced large removal" variant: the paper defines `b_i`
//! without forcing the large job out when the load already fits, and then
//! relies on tie-breaking to ensure such processors are selected. Forcing
//! the removal gives the *exact* minimum cost of the requirement a
//! non-selected processor must meet in a half-optimal configuration
//! (load ≤ T and large-free), so the Lemma 3 lower-bound argument holds
//! verbatim and no fragile tie-break reasoning is needed. See DESIGN.md §5.
//!
//! Lemma 5: all of `L_T`, `a_i`, `b_i` change only when `T` crosses one of
//! the discrete [`candidates`](Profiles::candidates): doubled job sizes
//! (large/small flips), per-processor ascending prefix sums (`b_i` steps),
//! and doubled prefix sums (`a_i` steps).

use crate::model::{Instance, JobId, ProcId, Size};
use crate::scratch::ThresholdLadder;

/// Size profile of one processor: its jobs in ascending size order plus
/// prefix sums.
#[derive(Debug, Clone, Default)]
pub struct ProcProfile {
    /// Job ids on this processor, ascending by size (ties by id).
    pub jobs_asc: Vec<JobId>,
    /// `prefix[l]` = total size of the `l` smallest jobs; `prefix[0] = 0`.
    pub prefix: Vec<Size>,
}

impl ProcProfile {
    /// Number of jobs on the processor.
    pub fn len(&self) -> usize {
        self.jobs_asc.len()
    }

    /// True if the processor starts empty.
    pub fn is_empty(&self) -> bool {
        self.jobs_asc.is_empty()
    }

    /// Total initial load.
    pub fn load(&self) -> Size {
        *self.prefix.last().unwrap_or(&0)
    }
}

/// Precomputed profiles for a whole instance, supporting `O(log n)` queries
/// of every PARTITION quantity at any makespan guess.
#[derive(Debug, Clone, Default)]
pub struct Profiles {
    per_proc: Vec<ProcProfile>,
    /// All job sizes, ascending — for the global large-job count.
    sizes_asc: Vec<Size>,
}

impl Profiles {
    /// Build profiles for an instance (`O(n log n)`).
    pub fn new(inst: &Instance) -> Self {
        let mut profiles = Profiles::default();
        profiles.rebuild(inst, &mut ThresholdLadder::default());
        profiles
    }

    /// Rebuild the profiles for `inst` in place, reusing this value's
    /// buffers and the ladder's cached multiset sort (see
    /// [`crate::scratch::Scratch`]). Equivalent to [`Profiles::new`] but
    /// allocation-free once the buffers have grown to the instance shape.
    pub fn rebuild(&mut self, inst: &Instance, ladder: &mut ThresholdLadder) {
        let m = inst.num_procs();
        self.per_proc.truncate(m);
        self.per_proc.resize_with(m, ProcProfile::default);
        for prof in &mut self.per_proc {
            prof.jobs_asc.clear();
            prof.prefix.clear();
        }
        for (j, &p) in inst.initial().iter().enumerate() {
            self.per_proc[p].jobs_asc.push(j);
        }
        for prof in &mut self.per_proc {
            prof.jobs_asc.sort_by_key(|&j| (inst.size(j), j));
            prof.prefix.push(0);
            let mut acc = 0u64;
            for &j in &prof.jobs_asc {
                acc += inst.size(j);
                prof.prefix.push(acc);
            }
        }
        ladder.sizes_asc_into(inst.jobs(), &mut self.sizes_asc);
    }

    /// Profile of processor `p`.
    pub fn proc(&self, p: ProcId) -> &ProcProfile {
        &self.per_proc[p]
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Global number of large jobs `L_T` at guess `t`.
    pub fn l_t(&self, t: Size) -> usize {
        // Large iff 2·size > t, i.e. size > t/2; sizes_asc is sorted, so
        // count the suffix.
        let boundary = self.sizes_asc.partition_point(|&s| 2 * s <= t);
        self.sizes_asc.len().saturating_sub(boundary)
    }

    /// Number of small jobs on processor `p` at guess `t` (they form a
    /// prefix of the ascending job list).
    pub fn small_count(&self, p: ProcId, t: Size) -> usize {
        let prof = &self.per_proc[p];
        // The size of the job at index i is prefix[i+1] − prefix[i]; sizes
        // ascend with i, so binary search for the first large one.
        let (mut lo, mut hi) = (0usize, prof.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if 2 * (prof.prefix[mid + 1] - prof.prefix[mid]) <= t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// `a_i(t)`: minimum number of small jobs to remove from `p` so the
    /// remaining small jobs total at most `t/2`. Removing largest-first is
    /// optimal for minimizing the count, and the smalls are a prefix, so
    /// this is `small_count − max{l : 2·prefix[l] ≤ t}`.
    pub fn a(&self, p: ProcId, t: Size) -> usize {
        let sc = self.small_count(p, t);
        let prof = &self.per_proc[p];
        let keep = prof.prefix[..=sc]
            .partition_point(|&s| 2 * s <= t)
            .saturating_sub(1);
        sc.saturating_sub(keep)
    }

    /// `b_i(t)` in the forced variant: number of removals after which
    /// processor `p` (in its post-Step-1 state, i.e. at most one large job)
    /// is large-free with total load at most `t`. One removal for the kept
    /// large job if any, plus largest-first small removals until the small
    /// total is at most `t`.
    pub fn b(&self, p: ProcId, t: Size) -> usize {
        let sc = self.small_count(p, t);
        let prof = &self.per_proc[p];
        let keep = prof.prefix[..=sc]
            .partition_point(|&s| s <= t)
            .saturating_sub(1);
        let has_large = sc < prof.len();
        sc.saturating_sub(keep)
            .saturating_add(usize::from(has_large))
    }

    /// `c_i(t) = a_i(t) − b_i(t)` (can be −1 for processors with a large
    /// job).
    pub fn c(&self, p: ProcId, t: Size) -> i64 {
        self.a(p, t) as i64 - self.b(p, t) as i64
    }

    /// True if processor `p` holds at least one large job at guess `t`.
    pub fn has_large(&self, p: ProcId, t: Size) -> bool {
        self.small_count(p, t) < self.per_proc[p].len()
    }

    /// Number of processors with at least one large job (`m_L`).
    pub fn m_l(&self, t: Size) -> usize {
        (0..self.per_proc.len())
            .filter(|&p| self.has_large(p, t))
            .count()
    }

    /// Sorted, deduplicated candidate thresholds (Lemma 5): between two
    /// consecutive values every `L_T`, `a_i`, `b_i` is constant. Contains
    /// `2·p_j` for every job and `B_l`, `2·B_l` for every per-processor
    /// ascending prefix sum.
    pub fn candidates(&self) -> Vec<Size> {
        let mut cands = Vec::new();
        self.candidates_into(&mut cands);
        cands
    }

    /// [`Profiles::candidates`] into a caller-owned buffer (cleared first),
    /// so batch solvers reuse the allocation across instances.
    pub fn candidates_into(&self, out: &mut Vec<Size>) {
        out.clear();
        out.reserve(3 * self.sizes_asc.len());
        for &s in &self.sizes_asc {
            out.push(2 * s);
        }
        for prof in &self.per_proc {
            for &b in &prof.prefix[1..] {
                out.push(b);
                out.push(2 * b);
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// proc 0: sizes `[2, 3, 7]`; proc 1: sizes `[4]`.
    fn inst() -> Instance {
        Instance::from_sizes(&[7, 2, 3, 4], vec![0, 0, 0, 1], 2).unwrap()
    }

    #[test]
    fn profiles_sorted_with_prefix_sums() {
        let p = Profiles::new(&inst());
        assert_eq!(p.proc(0).prefix, vec![0, 2, 5, 12]);
        assert_eq!(p.proc(1).prefix, vec![0, 4]);
        assert_eq!(p.proc(0).load(), 12);
    }

    #[test]
    fn large_job_counts() {
        let p = Profiles::new(&inst());
        // t=6: large iff 2s > 6 <=> s > 3: sizes 7 and 4 are large.
        assert_eq!(p.l_t(6), 2);
        // t=8: large iff s > 4: only 7.
        assert_eq!(p.l_t(8), 1);
        // t=14: none large (2*7=14 <= 14).
        assert_eq!(p.l_t(14), 0);
        assert_eq!(p.m_l(6), 2);
        assert_eq!(p.m_l(8), 1);
        assert!(p.has_large(0, 8));
        assert!(!p.has_large(1, 8));
    }

    #[test]
    fn small_counts_are_prefixes() {
        let p = Profiles::new(&inst());
        // proc0 ascending sizes [2,3,7]; t=6 -> smalls {2,3}.
        assert_eq!(p.small_count(0, 6), 2);
        assert_eq!(p.small_count(0, 14), 3);
        assert_eq!(p.small_count(1, 8), 1);
    }

    #[test]
    fn small_count_boundary_is_strict() {
        let p = Profiles::new(&inst());
        // size s is small iff 2s <= t. At t = 4, size 2 is small (4<=4),
        // size 3 is large (6>4).
        assert_eq!(p.small_count(0, 4), 1);
        // At t = 3, size 2 is large (4 > 3).
        assert_eq!(p.small_count(0, 3), 0);
    }

    #[test]
    fn a_counts_small_removals_to_half() {
        let p = Profiles::new(&inst());
        // t=10: smalls on proc0 = {2,3} (7 is large), small total 5 <= 5 = t/2: a=0.
        assert_eq!(p.a(0, 10), 0);
        // t=8: smalls {2,3} total 5 > 4; removing 3 leaves 2 <= 4: a=1.
        assert_eq!(p.a(0, 8), 1);
        // t=14: smalls {2,3,7} total 12 > 7; remove 7 -> 5 <= 7: a=1.
        assert_eq!(p.a(0, 14), 1);
    }

    #[test]
    fn b_forces_large_removal() {
        let p = Profiles::new(&inst());
        // t=8: proc0 has large 7 (forced removal) + smalls {2,3} total 5 <= 8: b=1.
        assert_eq!(p.b(0, 8), 1);
        // t=4: smalls {2}, larges {3,7}: post-Step-1 one large kept -> forced 1;
        // small total 2 <= 4: b=1.
        assert_eq!(p.b(0, 4), 1);
        // t=14: no larges; total 12 <= 14: b=0.
        assert_eq!(p.b(0, 14), 0);
        // proc1 t=8: large 4? 2*4=8 <= 8 -> small. total 4 <= 8: b=0.
        assert_eq!(p.b(1, 8), 0);
    }

    #[test]
    fn c_can_be_negative_only_with_large() {
        let p = Profiles::new(&inst());
        // t=10: a(0)=0, b(0)=1 -> c=-1.
        assert_eq!(p.c(0, 10), -1);
        // Large-free processors have a >= b so c >= 0.
        assert!(p.c(1, 10) >= 0);
    }

    #[test]
    fn candidates_cover_changes() {
        let p = Profiles::new(&inst());
        let cands = p.candidates();
        // Sorted and deduped.
        assert!(cands.windows(2).all(|w| w[0] < w[1]));
        // Contains doubled sizes and prefix sums.
        for v in [4, 6, 8, 14, 2, 5, 12, 10, 24] {
            assert!(cands.contains(&v), "missing {v}");
        }
        // Every quantity is constant between consecutive candidates: probe
        // midpoints (here: integer t between candidates) and endpoints.
        for w in cands.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi - lo >= 2 {
                let mid = lo + 1;
                assert_eq!(p.l_t(lo), p.l_t(mid), "L_T changed inside ({lo},{hi})");
                for proc in 0..2 {
                    assert_eq!(
                        p.a(proc, lo),
                        p.a(proc, mid),
                        "a changed inside ({lo},{hi})"
                    );
                    assert_eq!(
                        p.b(proc, lo),
                        p.b(proc, mid),
                        "b changed inside ({lo},{hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn largest_candidate_needs_no_moves() {
        let p = Profiles::new(&inst());
        let t = *p.candidates().last().unwrap();
        assert_eq!(p.l_t(t), 0);
        for proc in 0..2 {
            assert_eq!(p.a(proc, t), 0);
            assert_eq!(p.b(proc, t), 0);
        }
    }

    #[test]
    fn rebuild_reuses_buffers_and_matches_fresh_construction() {
        let mut ladder = ThresholdLadder::default();
        let mut p = Profiles::default();
        let a = inst();
        // A different placement of the same size multiset, then a different
        // multiset entirely; each rebuild must match a fresh build.
        let b = Instance::from_sizes(&[7, 2, 3, 4], vec![1, 1, 0, 0], 2).unwrap();
        let c = Instance::from_sizes(&[5, 5], vec![0, 1], 3).unwrap();
        for inst in [&a, &b, &c] {
            p.rebuild(inst, &mut ladder);
            let fresh = Profiles::new(inst);
            assert_eq!(p.candidates(), fresh.candidates());
            for proc in 0..inst.num_procs() {
                assert_eq!(p.proc(proc).jobs_asc, fresh.proc(proc).jobs_asc);
                assert_eq!(p.proc(proc).prefix, fresh.proc(proc).prefix);
            }
            for t in [0u64, 3, 7, 10, 24] {
                assert_eq!(p.l_t(t), fresh.l_t(t), "t={t}");
            }
        }
    }

    #[test]
    fn empty_processor_profile() {
        let inst = Instance::from_sizes(&[5], vec![0], 3).unwrap();
        let p = Profiles::new(&inst);
        assert!(p.proc(1).is_empty());
        assert_eq!(p.a(1, 10), 0);
        assert_eq!(p.b(1, 10), 0);
    }
}
