//! Problem model: jobs, processors, instances and assignments.
//!
//! An [`Instance`] is the paper's input: `n` jobs of integer sizes, each with
//! an integer relocation cost, already placed on `m` processors. All the
//! algorithms in this crate consume an `Instance` and produce a new
//! assignment; jobs that stay on their initial processor are free, jobs that
//! move pay their relocation cost (1 in the unit-cost model).
//!
//! Sizes and costs are `u64` throughout so the paper's threshold values
//! (prefix sums, doubled job sizes) are exact integers and no floating-point
//! comparisons appear in the core algorithms.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Index of a job within an instance (`0..n`).
pub type JobId = usize;
/// Index of a processor within an instance (`0..m`).
pub type ProcId = usize;
/// Job size (processing time / load contribution).
pub type Size = u64;
/// Relocation cost of a job.
pub type Cost = u64;

/// A job: its size and the cost of relocating it to a different processor.
///
/// In the unit-cost model every job has `cost == 1` and a budget of `k`
/// means "move at most `k` jobs".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    /// Processing time of the job; contributes this amount to the load of
    /// whichever processor it is assigned to.
    pub size: Size,
    /// Cost charged if the job ends up on a processor different from its
    /// initial one. Staying put is free.
    pub cost: Cost,
}

impl Job {
    /// A job with the given size and unit relocation cost.
    pub const fn unit(size: Size) -> Self {
        Job { size, cost: 1 }
    }

    /// A job with an explicit relocation cost.
    pub const fn with_cost(size: Size, cost: Cost) -> Self {
        Job { size, cost }
    }
}

/// A complete assignment of jobs to processors: `assignment[j]` is the
/// processor that job `j` runs on.
pub type Assignment = Vec<ProcId>;

/// A load-rebalancing instance: jobs with an initial placement on `m`
/// processors.
///
/// Construction validates the placement; afterwards the instance is
/// immutable, so derived quantities (initial loads, total size) are computed
/// once and cached.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    jobs: Vec<Job>,
    initial: Assignment,
    num_procs: usize,
    #[serde(skip)]
    cached_loads: Vec<Size>,
    #[serde(skip)]
    cached_total: Size,
}

impl Instance {
    /// Build an instance from jobs, their initial placement, and the number
    /// of processors.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_procs == 0`, the vectors disagree in length,
    /// or any placement is out of range.
    pub fn new(jobs: Vec<Job>, initial: Assignment, num_procs: usize) -> Result<Self> {
        if num_procs == 0 {
            return Err(Error::NoProcessors);
        }
        if jobs.len() != initial.len() {
            return Err(Error::LengthMismatch {
                jobs: jobs.len(),
                assignment: initial.len(),
            });
        }
        for (j, &p) in initial.iter().enumerate() {
            if p >= num_procs {
                return Err(Error::ProcOutOfRange {
                    job: j,
                    proc: p,
                    num_procs,
                });
            }
        }
        let mut inst = Instance {
            jobs,
            initial,
            num_procs,
            cached_loads: Vec::new(),
            cached_total: 0,
        };
        inst.refresh_cache();
        Ok(inst)
    }

    /// Build a unit-cost instance from raw sizes.
    pub fn from_sizes(sizes: &[Size], initial: Assignment, num_procs: usize) -> Result<Self> {
        Self::new(
            sizes.iter().map(|&s| Job::unit(s)).collect(),
            initial,
            num_procs,
        )
    }

    /// Recompute the cached initial loads and total size. Called by
    /// constructors and by deserialization hooks.
    fn refresh_cache(&mut self) {
        let mut loads = vec![0u64; self.num_procs];
        let mut total = 0u64;
        for (job, &p) in self.jobs.iter().zip(&self.initial) {
            // Saturating: pathological near-u64::MAX sizes clamp instead of
            // aborting under overflow-checks; every derived bound stays a
            // valid (if conservative) u64.
            loads[p] = loads[p].saturating_add(job.size);
            total = total.saturating_add(job.size);
        }
        self.cached_loads = loads;
        self.cached_total = total;
    }

    /// Re-validate and repopulate caches after deserialization.
    ///
    /// `serde` skips the cache fields, so an instance read from JSON must be
    /// passed through this before use.
    pub fn into_validated(mut self) -> Result<Self> {
        let jobs = std::mem::take(&mut self.jobs);
        let initial = std::mem::take(&mut self.initial);
        Self::new(jobs, initial, self.num_procs)
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of processors `m`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// All jobs, indexed by `JobId`.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Size of job `j`.
    #[inline]
    pub fn size(&self, j: JobId) -> Size {
        self.jobs[j].size
    }

    /// Relocation cost of job `j`.
    #[inline]
    pub fn cost(&self, j: JobId) -> Cost {
        self.jobs[j].cost
    }

    /// The initial assignment.
    #[inline]
    pub fn initial(&self) -> &Assignment {
        &self.initial
    }

    /// Initial processor of job `j`.
    #[inline]
    pub fn initial_proc(&self, j: JobId) -> ProcId {
        self.initial[j]
    }

    /// Initial load of every processor.
    #[inline]
    pub fn initial_loads(&self) -> &[Size] {
        &self.cached_loads
    }

    /// Makespan (maximum processor load) of the initial assignment.
    pub fn initial_makespan(&self) -> Size {
        self.cached_loads.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all job sizes.
    #[inline]
    pub fn total_size(&self) -> Size {
        self.cached_total
    }

    /// Average load, rounded up: `ceil(total / m)`. A lower bound on any
    /// achievable makespan.
    pub fn avg_load_ceil(&self) -> Size {
        self.cached_total.div_ceil(self.num_procs as u64)
    }

    /// Largest job size; another lower bound on any achievable makespan.
    pub fn max_job_size(&self) -> Size {
        self.jobs.iter().map(|j| j.size).max().unwrap_or(0)
    }

    /// Job ids grouped by initial processor.
    pub fn jobs_by_proc(&self) -> Vec<Vec<JobId>> {
        let mut per = vec![Vec::new(); self.num_procs];
        for (j, &p) in self.initial.iter().enumerate() {
            per[p].push(j);
        }
        per
    }

    /// Compute per-processor loads of an arbitrary assignment.
    ///
    /// # Errors
    ///
    /// Fails if the assignment has the wrong length or references a
    /// processor out of range.
    pub fn loads_of(&self, assignment: &[ProcId]) -> Result<Vec<Size>> {
        if assignment.len() != self.jobs.len() {
            return Err(Error::AssignmentLength {
                expected: self.jobs.len(),
                got: assignment.len(),
            });
        }
        let mut loads = vec![0u64; self.num_procs];
        for (j, &p) in assignment.iter().enumerate() {
            if p >= self.num_procs {
                return Err(Error::ProcOutOfRange {
                    job: j,
                    proc: p,
                    num_procs: self.num_procs,
                });
            }
            loads[p] = loads[p].saturating_add(self.jobs[j].size);
        }
        Ok(loads)
    }

    /// Makespan of an arbitrary assignment.
    pub fn makespan_of(&self, assignment: &[ProcId]) -> Result<Size> {
        Ok(self.loads_of(assignment)?.into_iter().max().unwrap_or(0))
    }

    /// Jobs whose processor differs between the initial assignment and
    /// `assignment` — the relocated set.
    pub fn moved_jobs(&self, assignment: &[ProcId]) -> Vec<JobId> {
        self.initial
            .iter()
            .zip(assignment)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(j, _)| j)
            .collect()
    }

    /// Number of relocated jobs.
    pub fn move_count(&self, assignment: &[ProcId]) -> usize {
        self.initial
            .iter()
            .zip(assignment)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Total relocation cost of `assignment` relative to the initial one.
    pub fn move_cost(&self, assignment: &[ProcId]) -> Cost {
        self.initial
            .iter()
            .zip(assignment)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(j, _)| self.jobs[j].cost)
            .fold(0u64, u64::saturating_add)
    }

    /// True if every job has unit relocation cost.
    pub fn is_unit_cost(&self) -> bool {
        self.jobs.iter().all(|j| j.cost == 1)
    }

    /// Sum of all relocation costs (an upper bound on any useful budget).
    pub fn total_cost(&self) -> Cost {
        self.jobs
            .iter()
            .map(|j| j.cost)
            .fold(0u64, u64::saturating_add)
    }
}

/// Relocation budget: either a bound on the *number* of moved jobs
/// (the paper's `k`) or on the *total relocation cost* (the paper's `B`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Budget {
    /// Move at most this many jobs.
    Moves(usize),
    /// Total relocation cost of moved jobs at most this.
    Cost(Cost),
}

impl Budget {
    /// Whether an assignment for `inst` respects this budget.
    pub fn allows(&self, inst: &Instance, assignment: &[ProcId]) -> bool {
        match *self {
            Budget::Moves(k) => inst.move_count(assignment) <= k,
            Budget::Cost(b) => inst.move_cost(assignment) <= b,
        }
    }

    /// The budget expressed as a cost bound for unit-cost instances; `Moves(k)`
    /// maps to `k` since each move costs 1.
    pub fn as_cost(&self) -> Cost {
        match *self {
            Budget::Moves(k) => k as u64,
            Budget::Cost(b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Instance {
        // proc 0: sizes 5, 3; proc 1: size 4.
        Instance::from_sizes(&[5, 3, 4], vec![0, 0, 1], 2).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            Instance::from_sizes(&[1], vec![0], 0).unwrap_err(),
            Error::NoProcessors
        );
        assert!(matches!(
            Instance::from_sizes(&[1, 2], vec![0], 1).unwrap_err(),
            Error::LengthMismatch { .. }
        ));
        assert!(matches!(
            Instance::from_sizes(&[1], vec![3], 2).unwrap_err(),
            Error::ProcOutOfRange { proc: 3, .. }
        ));
    }

    #[test]
    fn cached_quantities() {
        let inst = toy();
        assert_eq!(inst.initial_loads(), &[8, 4]);
        assert_eq!(inst.initial_makespan(), 8);
        assert_eq!(inst.total_size(), 12);
        assert_eq!(inst.avg_load_ceil(), 6);
        assert_eq!(inst.max_job_size(), 5);
    }

    #[test]
    fn avg_load_rounds_up() {
        let inst = Instance::from_sizes(&[5, 4], vec![0, 1], 3).unwrap();
        // total 9 over 3 procs = 3 exactly; 10 over 3 = 4.
        assert_eq!(inst.avg_load_ceil(), 3);
        let inst = Instance::from_sizes(&[5, 5], vec![0, 1], 3).unwrap();
        assert_eq!(inst.avg_load_ceil(), 4);
    }

    #[test]
    fn loads_and_moves_of_assignment() {
        let inst = toy();
        let alt = vec![0, 1, 1];
        assert_eq!(inst.loads_of(&alt).unwrap(), vec![5, 7]);
        assert_eq!(inst.makespan_of(&alt).unwrap(), 7);
        assert_eq!(inst.moved_jobs(&alt), vec![1]);
        assert_eq!(inst.move_count(&alt), 1);
        assert_eq!(inst.move_cost(&alt), 1);
    }

    #[test]
    fn loads_of_rejects_bad_assignments() {
        let inst = toy();
        assert!(inst.loads_of(&[0]).is_err());
        assert!(inst.loads_of(&[0, 0, 9]).is_err());
    }

    #[test]
    fn move_cost_uses_job_costs() {
        let jobs = vec![
            Job::with_cost(5, 10),
            Job::with_cost(3, 7),
            Job::with_cost(4, 1),
        ];
        let inst = Instance::new(jobs, vec![0, 0, 1], 2).unwrap();
        assert!(!inst.is_unit_cost());
        assert_eq!(inst.total_cost(), 18);
        let alt = vec![1, 0, 0];
        assert_eq!(inst.move_cost(&alt), 11); // jobs 0 and 2 moved
    }

    #[test]
    fn budget_allows() {
        let inst = toy();
        let alt = vec![0, 1, 1];
        assert!(Budget::Moves(1).allows(&inst, &alt));
        assert!(!Budget::Moves(0).allows(&inst, &alt));
        assert!(Budget::Cost(1).allows(&inst, &alt));
        assert!(!Budget::Cost(0).allows(&inst, &alt));
        assert_eq!(Budget::Moves(4).as_cost(), 4);
        assert_eq!(Budget::Cost(9).as_cost(), 9);
    }

    #[test]
    fn jobs_by_proc_groups() {
        let inst = toy();
        assert_eq!(inst.jobs_by_proc(), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = Instance::from_sizes(&[], vec![], 3).unwrap();
        assert_eq!(inst.initial_makespan(), 0);
        assert_eq!(inst.avg_load_ceil(), 0);
        assert_eq!(inst.max_job_size(), 0);
    }

    #[test]
    fn near_max_job_sizes_saturate_instead_of_overflowing() {
        // Two jobs near u64::MAX on one processor: the summed load would
        // overflow; saturating accumulation must clamp, not abort (this is
        // the regression test for running with overflow-checks on).
        let big = u64::MAX - 3;
        let inst = Instance::from_sizes(&[big, big, 1], vec![0, 0, 1], 2).unwrap();
        assert_eq!(inst.initial_loads(), &[u64::MAX, 1]);
        assert_eq!(inst.total_size(), u64::MAX);
        assert_eq!(inst.initial_makespan(), u64::MAX);
        assert_eq!(inst.loads_of(&[0, 0, 0]).unwrap(), vec![u64::MAX, 0]);

        // Cost accumulation saturates too.
        let jobs = vec![Job::with_cost(1, big), Job::with_cost(1, big)];
        let ci = Instance::new(jobs, vec![0, 0], 2).unwrap();
        assert_eq!(ci.total_cost(), u64::MAX);
        assert_eq!(ci.move_cost(&[1, 1]), u64::MAX);
    }

    #[test]
    fn into_validated_rebuilds_caches() {
        let inst = toy();
        // Simulate a deserialized instance with empty caches.
        let mut raw = inst.clone();
        raw.cached_loads.clear();
        raw.cached_total = 0;
        let fixed = raw.into_validated().unwrap();
        assert_eq!(fixed.initial_loads(), inst.initial_loads());
        assert_eq!(fixed.total_size(), inst.total_size());
    }
}
