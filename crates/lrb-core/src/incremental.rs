//! The paper's incremental threshold scan (§3.1, proof of Theorem 3).
//!
//! M-PARTITION needs, for increasing candidate thresholds `t`, the planned
//! move count `L_E + Σ b_i + (sum of the L_T smallest c_i)`. The paper
//! observes that between consecutive thresholds nothing changes, and at
//! each threshold only O(1) quantities change, giving an `O(n log n)` scan
//! overall. This module implements that scan:
//!
//! * per-processor change events are precomputed (each candidate threshold
//!   affects the processors whose prefix sums or job sizes generated it);
//! * the multiset of `c_i` values lives in a Fenwick (binary indexed) tree
//!   over the value domain, supporting "sum of the `L_T` smallest values"
//!   in `O(log n)`; the sum of the `L_T` smallest values is independent of
//!   how ties are broken, so the tie-break rule of Step 3 does not affect
//!   the count (only the realized selection, which is recomputed once at
//!   the accepted threshold).
//!
//! The naive scan re-evaluates every processor per probe
//! (`O(m log n)` each); this one pays `O(log n)` per *event* and there are
//! `O(n)` events. The two agree by construction and by the cross-check
//! tests here and in `tests/theorems.rs`.

use crate::model::{Instance, Size};
use crate::profiles::Profiles;
use crate::scratch::{finalize_fingerprint, size_term};

/// Incrementally maintained sorted job-size multiset with a running
/// [`crate::scratch::ThresholdLadder`] fingerprint.
///
/// The online rebalancer keeps one of these in lockstep with its live job
/// set: each arrival/departure is an `O(n)` shifted insert/remove into the
/// sorted array plus an `O(1)` wrapping update of the commutative
/// fingerprint accumulator. Priming the ladder with
/// ([`Self::fingerprint`], [`Self::sizes_asc`]) then lets every rebalance
/// hit the ladder cache instead of re-sorting — the fingerprint here is
/// bit-identical to `ThresholdLadder::fingerprint_of` over the same
/// multiset by construction (both fold [`size_term`] terms through
/// [`finalize_fingerprint`]).
#[derive(Debug, Clone, Default)]
pub struct SizeMultiset {
    sizes_asc: Vec<Size>,
    /// Commutative Σ `size_term(size)` accumulator (wrapping).
    acc: u64,
    /// Σ sizes (wrapping, matching the fingerprint's total fold).
    total: u64,
}

impl SizeMultiset {
    /// An empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one size, keeping the array sorted.
    pub fn insert(&mut self, size: Size) {
        let at = self.sizes_asc.partition_point(|&s| s <= size);
        self.sizes_asc.insert(at, size);
        self.acc = self.acc.wrapping_add(size_term(size));
        self.total = self.total.wrapping_add(size);
    }

    /// Remove one occurrence of `size`; returns false when absent.
    pub fn remove(&mut self, size: Size) -> bool {
        let at = self.sizes_asc.partition_point(|&s| s < size);
        if self.sizes_asc.get(at) != Some(&size) {
            return false;
        }
        self.sizes_asc.remove(at);
        self.acc = self.acc.wrapping_sub(size_term(size));
        self.total = self.total.wrapping_sub(size);
        true
    }

    /// The ladder fingerprint of the current multiset.
    pub fn fingerprint(&self) -> u64 {
        finalize_fingerprint(self.acc, self.total, self.sizes_asc.len())
    }

    /// The sizes in ascending order.
    pub fn sizes_asc(&self) -> &[Size] {
        &self.sizes_asc
    }

    /// Number of sizes held.
    pub fn len(&self) -> usize {
        self.sizes_asc.len()
    }

    /// True when the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes_asc.is_empty()
    }
}

/// Fenwick tree over the `c`-value domain holding counts and sums, for
/// "sum of the `k` smallest values" queries.
#[derive(Debug, Clone)]
struct CMultiset {
    /// counts[v] = multiplicity of value (v as i64 − 1).
    counts: Vec<i64>,
    sums: Vec<i64>,
    size: usize,
}

impl CMultiset {
    fn new(domain: usize) -> Self {
        CMultiset {
            counts: vec![0; domain.saturating_add(1)],
            sums: vec![0; domain.saturating_add(1)],
            size: domain,
        }
    }

    #[inline]
    fn index(c: i64) -> usize {
        // c >= −1 always (see profiles::c); shift into 1-based Fenwick.
        c.saturating_add(2) as usize
    }

    fn add(&mut self, c: i64, delta: i64) {
        let mut i = Self::index(c);
        while i <= self.size {
            self.counts[i] += delta;
            self.sums[i] += delta.saturating_mul(c);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the `k` smallest values in the multiset (`k` no larger than
    /// the multiset size).
    fn sum_smallest(&self, k: usize) -> i64 {
        if k == 0 {
            return 0;
        }
        let mut remaining = k as i64;
        let mut acc = 0i64;
        let mut pos = 0usize;
        // Descend the implicit Fenwick tree: standard prefix search.
        let mut log = self.size.next_power_of_two();
        while log > 0 {
            let next = pos.saturating_add(log);
            if next <= self.size && self.counts[next] < remaining {
                remaining -= self.counts[next];
                acc += self.sums[next];
                pos = next;
            }
            log >>= 1;
        }
        // `pos` is the largest index whose prefix count < k; the remaining
        // elements all have value (pos+1) − 2 in the shifted domain.
        acc + remaining * ((pos as i64 + 1) - 2)
    }
}

/// Incremental scanner state over the candidate thresholds of an instance.
pub struct IncrementalScan<'a> {
    profiles: &'a Profiles,
    num_procs: usize,
    /// Sorted candidate thresholds.
    candidates: Vec<Size>,
    /// Events: `events[j]` = processors affected when the scan reaches
    /// `candidates[j]` (deduplicated).
    events: Vec<Vec<usize>>,
    /// Current per-processor (a, b, has_large).
    state: Vec<(usize, usize, bool)>,
    /// Current candidate index (the scan's position).
    pos: usize,
    /// Running Σ b_i.
    sum_b: usize,
    /// Running m_L.
    m_l: usize,
    cset: CMultiset,
}

impl<'a> IncrementalScan<'a> {
    /// Build the scanner, positioned at the first candidate at or above
    /// `start_at` minus one region (mirroring `mpartition`'s starting rule).
    ///
    /// Returns `None` when the instance has no jobs.
    pub fn new(inst: &Instance, profiles: &'a Profiles, start_at: Size) -> Option<Self> {
        let candidates = profiles.candidates();
        if candidates.is_empty() {
            return None;
        }
        let start = candidates
            .partition_point(|&t| t < start_at)
            .saturating_sub(1);

        // Event map: which processors does each candidate affect? A
        // candidate generated by processor p's prefix sums affects p; a
        // candidate 2·p_j affects the job's processor (small/large flip)
        // and the global L_T (handled separately via l_t()).
        let m = inst.num_procs();
        let mut pairs: Vec<(Size, usize)> = Vec::new();
        for p in 0..m {
            let prof = profiles.proc(p);
            for l in 1..prof.prefix.len() {
                let b = prof.prefix[l];
                pairs.push((b, p));
                pairs.push((b.saturating_mul(2), p));
                // Job sizes are prefix differences; their doubles flip the
                // small/large classification on this processor.
                pairs.push((2 * (prof.prefix[l] - prof.prefix[l - 1]), p));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut events: Vec<Vec<usize>> = vec![Vec::new(); candidates.len()];
        for (v, p) in pairs {
            // Candidates are exactly the deduplicated values, so the lookup
            // always hits.
            let j = candidates.partition_point(|&t| t < v);
            debug_assert!(j < candidates.len() && candidates[j] == v);
            events[j].push(p);
        }

        // Initialize full state at candidates[start].
        let t0 = candidates[start];
        let mut state = Vec::with_capacity(m);
        let mut sum_b = 0usize;
        let mut m_l = 0usize;
        // Domain of c values: c ∈ [−1, max jobs on one processor].
        let domain = (0..m).map(|p| profiles.proc(p).len()).max().unwrap_or(0) + 3;
        let mut cset = CMultiset::new(domain);
        for p in 0..m {
            let a = profiles.a(p, t0);
            let b = profiles.b(p, t0);
            let hl = profiles.has_large(p, t0);
            sum_b += b;
            m_l += usize::from(hl);
            cset.add((a as i64).saturating_sub(b as i64), 1);
            state.push((a, b, hl));
        }

        Some(IncrementalScan {
            profiles,
            num_procs: m,
            candidates,
            events,
            state,
            pos: start,
            sum_b,
            m_l,
            cset,
        })
    }

    /// The threshold the scanner currently sits on.
    pub fn current_threshold(&self) -> Size {
        self.candidates[self.pos]
    }

    /// Planned moves at the current threshold; `None` when infeasible
    /// (`L_T > m`).
    pub fn planned_moves(&self) -> Option<usize> {
        let t = self.candidates[self.pos];
        let l_t = self.profiles.l_t(t);
        if l_t > self.num_procs {
            return None;
        }
        let l_e = l_t - self.m_l;
        let selected = self.cset.sum_smallest(l_t);
        Some(
            (l_e as i64)
                .saturating_add(self.sum_b as i64)
                .saturating_add(selected) as usize,
        )
    }

    /// Advance to the next candidate, applying its events. Returns false
    /// when the scan is exhausted.
    pub fn advance(&mut self) -> bool {
        if self.pos + 1 >= self.candidates.len() {
            return false;
        }
        self.pos += 1;
        let t = self.candidates[self.pos];
        // The events list holds exactly the processors whose a/b/has_large
        // can change at this candidate; take them out to appease the
        // borrow checker, then restore.
        let procs = std::mem::take(&mut self.events[self.pos]);
        for &p in &procs {
            let (a_old, b_old, hl_old) = self.state[p];
            let a = self.profiles.a(p, t);
            let b = self.profiles.b(p, t);
            let hl = self.profiles.has_large(p, t);
            if (a, b, hl) != (a_old, b_old, hl_old) {
                self.sum_b = self.sum_b.saturating_sub(b_old).saturating_add(b);
                self.m_l = self.m_l - usize::from(hl_old) + usize::from(hl);
                self.cset
                    .add((a_old as i64).saturating_sub(b_old as i64), -1);
                self.cset.add((a as i64).saturating_sub(b as i64), 1);
                self.state[p] = (a, b, hl);
            }
        }
        self.events[self.pos] = procs;
        true
    }

    /// Scan forward (inclusive of the current position) to the first
    /// threshold with planned moves at most `k`; returns the threshold and
    /// the number of thresholds visited.
    pub fn first_feasible(&mut self, k: usize) -> Option<(Size, usize)> {
        let mut probes = 0usize;
        loop {
            probes += 1;
            if matches!(self.planned_moves(), Some(moves) if moves <= k) {
                return Some((self.current_threshold(), probes));
            }
            if !self.advance() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition;

    fn check_against_naive(inst: &Instance) {
        let profiles = Profiles::new(inst);
        let Some(mut scan) = IncrementalScan::new(inst, &profiles, inst.avg_load_ceil()) else {
            return;
        };
        loop {
            let t = scan.current_threshold();
            let naive = partition::planned_moves(&profiles, t);
            assert_eq!(scan.planned_moves(), naive, "threshold {t} ({inst:?})");
            if !scan.advance() {
                break;
            }
        }
    }

    #[test]
    fn matches_naive_on_fixed_instances() {
        let insts = [
            Instance::from_sizes(&[7, 2, 3, 4, 6, 1], vec![0, 0, 0, 1, 1, 2], 3).unwrap(),
            Instance::from_sizes(
                &[114, 3, 7, 40, 47, 45, 8, 5],
                vec![0, 0, 0, 0, 1, 0, 1, 0],
                2,
            )
            .unwrap(),
            Instance::from_sizes(&[10, 10, 10], vec![0, 0, 0], 3).unwrap(),
            Instance::from_sizes(&[1, 2, 1], vec![0, 0, 1], 2).unwrap(),
            Instance::from_sizes(&[5], vec![0], 4).unwrap(),
        ];
        for inst in &insts {
            check_against_naive(inst);
        }
    }

    #[test]
    fn matches_naive_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..60 {
            let n = rng.gen_range(1..=14);
            let m = rng.gen_range(1..=4);
            let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=60)).collect();
            let initial: Vec<usize> = (0..n).map(|_| rng.gen_range(0..m)).collect();
            let inst = Instance::from_sizes(&sizes, initial, m).unwrap();
            check_against_naive(&inst);
        }
    }

    #[test]
    fn first_feasible_agrees_with_mpartition_scan() {
        use crate::mpartition::{rebalance_with, ThresholdSearch};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for _ in 0..40 {
            let n = rng.gen_range(1..=12);
            let m = rng.gen_range(2..=4);
            let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=40)).collect();
            let initial: Vec<usize> = (0..n).map(|_| rng.gen_range(0..m)).collect();
            let inst = Instance::from_sizes(&sizes, initial, m).unwrap();
            let k = rng.gen_range(0..=n);

            let profiles = Profiles::new(&inst);
            let mut scan = IncrementalScan::new(&inst, &profiles, inst.avg_load_ceil()).unwrap();
            let inc = scan.first_feasible(k).map(|(t, _)| t);
            let reference = rebalance_with(&inst, k, ThresholdSearch::Scan).unwrap();
            assert_eq!(inc, Some(reference.threshold), "n={n} m={m} k={k}");
        }
    }

    #[test]
    fn size_multiset_fingerprint_matches_fresh_fingerprint() {
        use crate::model::Job;
        use crate::scratch::ThresholdLadder;
        use rand::{Rng, SeedableRng};

        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..40 {
            let mut ms = SizeMultiset::new();
            let mut live: Vec<u64> = Vec::new();
            for _ in 0..rng.gen_range(0..40) {
                if !live.is_empty() && rng.gen_bool(0.4) {
                    let at = rng.gen_range(0..live.len());
                    let s = live.swap_remove(at);
                    assert!(ms.remove(s));
                } else {
                    let s = rng.gen_range(1..=30u64);
                    live.push(s);
                    ms.insert(s);
                }
            }
            live.sort_unstable();
            assert_eq!(ms.sizes_asc(), &live[..]);
            let jobs: Vec<Job> = live.iter().map(|&s| Job::unit(s)).collect();
            assert_eq!(ms.fingerprint(), ThresholdLadder::fingerprint_of(&jobs));
        }
    }

    #[test]
    fn size_multiset_remove_absent_is_false() {
        let mut ms = SizeMultiset::new();
        ms.insert(5);
        ms.insert(5);
        ms.insert(9);
        assert!(!ms.remove(4));
        assert!(ms.remove(5));
        assert_eq!(ms.sizes_asc(), &[5, 9]);
        assert_eq!(ms.len(), 2);
        assert!(!ms.is_empty());
    }

    #[test]
    fn fenwick_sum_smallest() {
        let mut s = CMultiset::new(10);
        for c in [-1i64, 0, 0, 2, 5] {
            s.add(c, 1);
        }
        assert_eq!(s.sum_smallest(0), 0);
        assert_eq!(s.sum_smallest(1), -1);
        assert_eq!(s.sum_smallest(2), -1);
        assert_eq!(s.sum_smallest(3), -1);
        assert_eq!(s.sum_smallest(4), 1);
        assert_eq!(s.sum_smallest(5), 6);
        s.add(0, -1);
        assert_eq!(s.sum_smallest(4), 6);
    }
}
