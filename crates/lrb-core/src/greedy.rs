//! The paper's `GREEDY` algorithm (§2): a `(2 − 1/m)`-approximation for the
//! unit-cost load rebalancing problem in `O(n log n)` time.
//!
//! The algorithm has two phases:
//!
//! 1. **Removal** — repeat `k` times: remove the largest job from the
//!    currently maximum-loaded processor. The makespan after this phase,
//!    `G1`, satisfies `G1 ≤ OPT` (Lemma 1), so it doubles as a *lower bound*
//!    on the optimum — see [`g1_lower_bound`].
//! 2. **Reinsertion** — place each removed job, one by one, on the currently
//!    minimum-loaded processor. The final makespan `G2` satisfies
//!    `G2 ≤ (2 − 1/m)·OPT` (Lemma 2), and the bound is tight (Theorem 1).
//!
//! The paper lets the reinsertion order be arbitrary; the order is exposed
//! via [`ReinsertOrder`] because the tightness construction (experiment T2)
//! needs the adversarial order, while descending order behaves like LPT and
//! is the better practical default.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lrb_obs::{names, NoopRecorder, Recorder};

use crate::deadline::WorkBudget;
use crate::error::{Error, Result};
use crate::model::{Instance, JobId, Size};
use crate::outcome::RebalanceOutcome;
use crate::scratch::{GreedyScratch, Scratch};

/// Order in which the removal-phase jobs are reinserted in phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReinsertOrder {
    /// Largest removed job first (LPT-like; best practical quality).
    #[default]
    Descending,
    /// Smallest removed job first (the adversarial order for the paper's
    /// tightness example).
    Ascending,
    /// Exactly the order the jobs were removed in phase 1.
    RemovalOrder,
}

/// Diagnostics from a `GREEDY` run, matching the quantities named in the
/// paper's analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyTrace {
    /// Makespan after the removal phase; `G1 ≤ OPT` by Lemma 1.
    pub g1: Size,
    /// Final makespan; `G2 ≤ (2 − 1/m)·OPT` by Lemma 2.
    pub g2: Size,
    /// Jobs removed in phase 1, in removal order.
    pub removed: Vec<JobId>,
}

/// Run `GREEDY` with at most `k` moves and the default (descending)
/// reinsertion order.
///
/// ```
/// use lrb_core::model::Instance;
///
/// // Four jobs piled on processor 0 of 2; two moves allowed.
/// let inst = Instance::from_sizes(&[4, 3, 3, 2], vec![0, 0, 0, 0], 2).unwrap();
/// let out = lrb_core::greedy::rebalance(&inst, 2).unwrap();
/// assert!(out.moves() <= 2);
/// assert!(out.makespan() <= 8); // (2 - 1/m) * OPT = 1.5 * 6 = 9, rounded down by luck
/// ```
pub fn rebalance(inst: &Instance, k: usize) -> Result<RebalanceOutcome> {
    rebalance_with_order(inst, k, ReinsertOrder::Descending).map(|(o, _)| o)
}

/// Run `GREEDY` with an explicit reinsertion order, returning the trace.
pub fn rebalance_with_order(
    inst: &Instance,
    k: usize,
    order: ReinsertOrder,
) -> Result<(RebalanceOutcome, GreedyTrace)> {
    rebalance_with_order_recorded(inst, k, order, &NoopRecorder)
}

/// [`rebalance_with_order`] with instrumentation: times the removal and
/// reinsertion phases (`greedy.removal` / `greedy.reinsert`), counts removed
/// and reinserted jobs and cross-processor moves, and observes the size of
/// every moved job in the `greedy.move_size` histogram.
pub fn rebalance_with_order_recorded<R: Recorder>(
    inst: &Instance,
    k: usize,
    order: ReinsertOrder,
    rec: &R,
) -> Result<(RebalanceOutcome, GreedyTrace)> {
    let mut scratch = Scratch::new();
    let (outcome, g1, g2) = rebalance_impl(
        inst,
        k,
        order,
        rec,
        &WorkBudget::unlimited(),
        &mut scratch.greedy,
    )?;
    let removed = scratch.greedy.removed.clone();
    Ok((outcome, GreedyTrace { g1, g2, removed }))
}

/// Run `GREEDY` under a [`WorkBudget`]: one tick is charged per removal and
/// per reinsertion step, so the run cancels with [`Error::Cancelled`] once
/// the budget is exhausted instead of finishing late.
pub fn rebalance_budgeted(
    inst: &Instance,
    k: usize,
    order: ReinsertOrder,
    work: &WorkBudget,
) -> Result<(RebalanceOutcome, GreedyTrace)> {
    let mut scratch = Scratch::new();
    let (outcome, g1, g2) =
        rebalance_impl(inst, k, order, &NoopRecorder, work, &mut scratch.greedy)?;
    let removed = scratch.greedy.removed.clone();
    Ok((outcome, GreedyTrace { g1, g2, removed }))
}

/// [`rebalance`] against a reusable [`Scratch`]: identical output, but every
/// working buffer (per-processor stacks, heaps, removal lists) lives in the
/// scratch, so repeated calls allocate only the returned assignment.
pub fn rebalance_scratch(
    inst: &Instance,
    k: usize,
    scratch: &mut Scratch,
) -> Result<RebalanceOutcome> {
    rebalance_scratch_recorded(inst, k, ReinsertOrder::Descending, &NoopRecorder, scratch)
}

/// [`rebalance_scratch`] with an explicit reinsertion order and recorder.
pub fn rebalance_scratch_recorded<R: Recorder>(
    inst: &Instance,
    k: usize,
    order: ReinsertOrder,
    rec: &R,
    scratch: &mut Scratch,
) -> Result<RebalanceOutcome> {
    rebalance_impl(
        inst,
        k,
        order,
        rec,
        &WorkBudget::unlimited(),
        &mut scratch.greedy,
    )
    .map(|(outcome, _, _)| outcome)
}

fn rebalance_impl<R: Recorder>(
    inst: &Instance,
    k: usize,
    order: ReinsertOrder,
    rec: &R,
    work: &WorkBudget,
    s: &mut GreedyScratch,
) -> Result<(RebalanceOutcome, Size, Size)> {
    let mut assignment = inst.initial().clone();
    let g1 = {
        let _t = rec.time(names::GREEDY_REMOVAL);
        removal_phase(inst, k, rec, work, s)?
    };

    // Phase 2: reinsert each removed job on the current minimum-loaded
    // processor, via a min-heap keyed on (load, proc).
    let _t = rec.time(names::GREEDY_REINSERT);
    s.order_buf.clear();
    s.order_buf.extend_from_slice(&s.removed);
    match order {
        ReinsertOrder::Descending => {
            s.order_buf.sort_by_key(|&j| Reverse(inst.size(j)));
        }
        ReinsertOrder::Ascending => s.order_buf.sort_by_key(|&j| inst.size(j)),
        ReinsertOrder::RemovalOrder => {}
    }

    let mut heap_buf = std::mem::take(&mut s.min_heap);
    heap_buf.clear();
    heap_buf.extend(s.loads.iter().enumerate().map(|(p, &l)| Reverse((l, p))));
    let mut heap = BinaryHeap::from(heap_buf);
    for &j in &s.order_buf {
        work.charge(names::GREEDY_REINSERT, 1)?;
        let Reverse((load, p)) = heap.pop().ok_or(Error::NoProcessors)?;
        let new_load = load.saturating_add(inst.size(j));
        assignment[j] = p;
        s.loads[p] = new_load;
        heap.push(Reverse((new_load, p)));
        rec.incr(names::GREEDY_JOBS_REINSERTED, 1);
        if p != inst.initial()[j] {
            rec.incr(names::GREEDY_MOVES, 1);
            rec.observe(names::GREEDY_MOVE_SIZE, inst.size(j));
        }
    }
    s.min_heap = heap.into_vec();

    let g2 = s.loads.iter().copied().max().unwrap_or(0);
    let outcome = RebalanceOutcome::from_assignment(inst, assignment)?;
    debug_assert_eq!(outcome.makespan(), g2);
    Ok((outcome, g1, g2))
}

/// Phase 1 of `GREEDY`: remove the largest job from the max-loaded processor
/// `k` times (stopping early once all loads are zero). Leaves the removed
/// jobs (in removal order) in `s.removed` and the residual per-processor
/// loads in `s.loads`; returns the resulting makespan `G1`.
fn removal_phase<R: Recorder>(
    inst: &Instance,
    k: usize,
    rec: &R,
    work: &WorkBudget,
    s: &mut GreedyScratch,
) -> Result<Size> {
    s.loads.clear();
    s.loads.extend_from_slice(inst.initial_loads());

    // Per-processor job stacks sorted ascending by size, so the largest job
    // is popped from the back in O(1). Stacks are filled in job-id order and
    // stably sorted, matching a fresh `jobs_by_proc()` build exactly.
    let m = inst.num_procs();
    s.per_proc.truncate(m);
    s.per_proc.resize_with(m, Vec::new);
    for jobs in &mut s.per_proc {
        jobs.clear();
    }
    for (j, &p) in inst.initial().iter().enumerate() {
        s.per_proc[p].push(j);
    }
    for jobs in &mut s.per_proc {
        jobs.sort_by_key(|&j| inst.size(j));
    }

    // Lazy max-heap over (load, proc): stale entries are skipped when the
    // recorded load no longer matches the live load.
    let mut heap_buf = std::mem::take(&mut s.max_heap);
    heap_buf.clear();
    heap_buf.extend(s.loads.iter().enumerate().map(|(p, &l)| (l, p)));
    let mut heap = BinaryHeap::from(heap_buf);

    s.removed.clear();
    for _ in 0..k {
        work.charge(names::GREEDY_REMOVAL, 1)?;
        let p = loop {
            match heap.pop() {
                Some((l, p)) if s.loads[p] == l => break Some(p),
                Some(_) => continue,
                None => break None,
            }
        };
        let Some(p) = p else { break };
        if s.loads[p] == 0 {
            // All processors are empty; removing more jobs is pointless.
            break;
        }
        // A nonzero load implies a job on the stack; treat a mismatch (an
        // internal-invariant breach, not user input) as "nothing to remove"
        // rather than panicking.
        let Some(j) = s.per_proc[p].pop() else { break };
        s.loads[p] = s.loads[p].saturating_sub(inst.size(j));
        s.removed.push(j);
        rec.incr(names::GREEDY_JOBS_REMOVED, 1);
        heap.push((s.loads[p], p));
    }
    s.max_heap = heap.into_vec();

    Ok(s.loads.iter().copied().max().unwrap_or(0))
}

/// Lemma 1 as a lower bound: the makespan after removing the largest job
/// from the max-loaded processor `k` times. Any rebalancing that moves at
/// most `k` jobs has makespan at least this value.
pub fn g1_lower_bound(inst: &Instance, k: usize) -> Size {
    let mut scratch = GreedyScratch::default();
    removal_phase(
        inst,
        k,
        &NoopRecorder,
        &WorkBudget::unlimited(),
        &mut scratch,
    )
    // lint: allow(no-panic-core, WorkBudget::unlimited() makes cancellation unreachable)
    .expect("unlimited work budget never cancels")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's tightness instance (proof of Theorem 1) for a given `m`:
    /// one job of size `m` plus `m² − m` unit jobs; every processor starts
    /// with `m − 1` unit jobs and processor 0 additionally holds the size-`m`
    /// job; `k = m − 1`.
    fn tightness_instance(m: usize) -> (Instance, usize) {
        let mut sizes = vec![m as u64];
        let mut initial = vec![0usize];
        for p in 0..m {
            for _ in 0..m - 1 {
                sizes.push(1);
                initial.push(p);
            }
        }
        (Instance::from_sizes(&sizes, initial, m).unwrap(), m - 1)
    }

    #[test]
    fn zero_moves_is_identity() {
        let inst = Instance::from_sizes(&[5, 3, 4], vec![0, 0, 1], 2).unwrap();
        let out = rebalance(&inst, 0).unwrap();
        assert_eq!(out.assignment(), inst.initial());
        assert_eq!(out.moves(), 0);
    }

    #[test]
    fn respects_move_budget() {
        let inst = Instance::from_sizes(&[5, 3, 4, 2, 2], vec![0, 0, 0, 0, 1], 2).unwrap();
        for k in 0..=5 {
            let out = rebalance(&inst, k).unwrap();
            assert!(out.moves() <= k, "k={k} moves={}", out.moves());
        }
    }

    #[test]
    fn moves_all_from_overloaded_proc() {
        // Everything on proc 0; k = n lets GREEDY fully balance.
        let inst = Instance::from_sizes(&[4, 4, 4, 4], vec![0, 0, 0, 0], 2).unwrap();
        let out = rebalance(&inst, 4).unwrap();
        assert_eq!(out.makespan(), 8);
    }

    #[test]
    fn g1_is_monotone_in_k_and_reaches_zero() {
        let inst = Instance::from_sizes(&[7, 5, 3, 2], vec![0, 0, 1, 1], 2).unwrap();
        let mut prev = u64::MAX;
        for k in 0..=4 {
            let g1 = g1_lower_bound(&inst, k);
            assert!(g1 <= prev);
            prev = g1;
        }
        assert_eq!(g1_lower_bound(&inst, 4), 0);
        // Removing more jobs than exist saturates at zero.
        assert_eq!(g1_lower_bound(&inst, 99), 0);
    }

    #[test]
    fn g1_removes_largest_from_max_loaded() {
        // proc 0 load 10 {6,4}, proc 1 load 7 {7}.
        let inst = Instance::from_sizes(&[6, 4, 7], vec![0, 0, 1], 2).unwrap();
        // k=1: remove 6 from proc0 -> loads {4,7} -> G1 = 7.
        assert_eq!(g1_lower_bound(&inst, 1), 7);
        // k=2: then remove 7 from proc1 -> {4,0} -> G1 = 4.
        assert_eq!(g1_lower_bound(&inst, 2), 4);
    }

    #[test]
    fn tightness_example_with_adversarial_order() {
        // With the big job reinserted last, GREEDY reproduces the original
        // configuration of value 2m − 1 while OPT = m (Theorem 1).
        for m in 2..=6 {
            let (inst, k) = tightness_instance(m);
            let (out, trace) = rebalance_with_order(&inst, k, ReinsertOrder::Ascending).unwrap();
            assert_eq!(trace.g1, (m - 1) as u64, "m={m}");
            assert_eq!(out.makespan(), (2 * m - 1) as u64, "m={m}");
        }
    }

    #[test]
    fn tightness_example_respects_theorem_1_bound() {
        // GREEDY's removal phase takes the size-m job first, so no
        // reinsertion order can reach OPT = m here; but every order stays
        // within the Theorem 1 bound (2 − 1/m)·OPT = 2m − 1.
        for m in 2..=6 {
            let (inst, k) = tightness_instance(m);
            for order in [
                ReinsertOrder::Descending,
                ReinsertOrder::Ascending,
                ReinsertOrder::RemovalOrder,
            ] {
                let (out, _) = rebalance_with_order(&inst, k, order).unwrap();
                assert!(
                    out.makespan() <= (2 * m - 1) as u64,
                    "m={m} order={order:?}"
                );
                assert!(out.makespan() >= m as u64, "m={m} order={order:?}");
            }
        }
    }

    #[test]
    fn trace_g2_matches_outcome() {
        let inst = Instance::from_sizes(&[9, 1, 1, 1, 8], vec![0, 0, 0, 0, 1], 3).unwrap();
        let (out, trace) = rebalance_with_order(&inst, 3, ReinsertOrder::RemovalOrder).unwrap();
        assert_eq!(trace.g2, out.makespan());
        assert_eq!(trace.removed.len(), out.moves().max(trace.removed.len()));
    }

    #[test]
    fn single_processor_is_noop_quality() {
        let inst = Instance::from_sizes(&[3, 4], vec![0, 0], 1).unwrap();
        let out = rebalance(&inst, 2).unwrap();
        assert_eq!(out.makespan(), 7);
    }

    #[test]
    fn budgeted_run_cancels_and_matches_unbudgeted() {
        let inst = Instance::from_sizes(&[9, 1, 1, 1, 8], vec![0, 0, 0, 0, 1], 3).unwrap();
        let err = rebalance_budgeted(&inst, 3, ReinsertOrder::Descending, &WorkBudget::new(1))
            .unwrap_err();
        assert!(matches!(err, crate::error::Error::Cancelled { .. }));

        let (budgeted, _) = rebalance_budgeted(
            &inst,
            3,
            ReinsertOrder::Descending,
            &WorkBudget::unlimited(),
        )
        .unwrap();
        let plain = rebalance(&inst, 3).unwrap();
        assert_eq!(budgeted.assignment(), plain.assignment());
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_sizes(&[], vec![], 2).unwrap();
        let out = rebalance(&inst, 3).unwrap();
        assert_eq!(out.makespan(), 0);
        assert_eq!(out.moves(), 0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        // One scratch reused across differently-shaped instances must match
        // a fresh solve on every call — growing and shrinking shapes stress
        // stale-buffer bugs.
        let insts = [
            Instance::from_sizes(&[9, 1, 1, 1, 8], vec![0, 0, 0, 0, 1], 3).unwrap(),
            Instance::from_sizes(&[5, 3], vec![0, 0], 2).unwrap(),
            Instance::from_sizes(&[7, 7, 7, 2, 2, 2, 1], vec![0, 0, 0, 1, 1, 1, 2], 4).unwrap(),
            Instance::from_sizes(&[], vec![], 2).unwrap(),
        ];
        let mut scratch = Scratch::new();
        for inst in &insts {
            for k in 0..=inst.num_jobs() {
                let fresh = rebalance(inst, k).unwrap();
                let reused = rebalance_scratch(inst, k, &mut scratch).unwrap();
                assert_eq!(fresh.assignment(), reused.assignment(), "k={k}");
                assert_eq!(fresh.makespan(), reused.makespan(), "k={k}");
            }
        }
    }
}
