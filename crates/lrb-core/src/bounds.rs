//! Lower bounds on the optimal rebalanced makespan.
//!
//! Experiments that run at scales beyond the exact solvers report
//! approximation ratios against [`lower_bound`], which combines three valid
//! bounds:
//!
//! * the average load `⌈total/m⌉` (some processor carries at least the mean),
//! * the largest job size (it must sit somewhere), and
//! * the paper's Lemma 1 bound `G1` — the makespan after `GREEDY`'s removal
//!   phase, which is optimal among all ways of *removing* `k` jobs and hence
//!   a lower bound on any `k`-move rebalancing.

use crate::greedy::g1_lower_bound;
use crate::model::{Budget, Instance, Size};

/// Best available lower bound on the optimal makespan achievable with the
/// given budget.
///
/// For a cost budget the Lemma 1 bound is replaced by a relaxation: the
/// number of moves is at least the number of cheapest jobs whose costs fit
/// in the budget, so `G1` is evaluated at that (generous) move count.
pub fn lower_bound(inst: &Instance, budget: Budget) -> Size {
    let k = max_moves_within(inst, budget);
    let base = inst.avg_load_ceil().max(inst.max_job_size());
    base.max(g1_lower_bound(inst, k))
}

/// The largest number of jobs that could possibly move under `budget`:
/// for `Moves(k)` it is `k`; for `Cost(b)` it is the longest prefix of jobs
/// sorted by increasing cost whose total cost fits in `b`.
pub fn max_moves_within(inst: &Instance, budget: Budget) -> usize {
    match budget {
        Budget::Moves(k) => k,
        Budget::Cost(b) => {
            let mut costs: Vec<u64> = inst.jobs().iter().map(|j| j.cost).collect();
            costs.sort_unstable();
            let mut spent = 0u64;
            let mut count = 0usize;
            for c in costs {
                match spent.checked_add(c) {
                    Some(s) if s <= b => {
                        spent = s;
                        count += 1;
                    }
                    _ => break,
                }
            }
            count
        }
    }
}

/// Check an approximation guarantee `makespan ≤ (num/den)·opt` in exact
/// integer arithmetic (`u128` to avoid overflow).
pub fn within_ratio(makespan: Size, opt: Size, num: u64, den: u64) -> bool {
    (makespan as u128) * (den as u128) <= (opt as u128) * (num as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_dominates_avg_and_max_job() {
        let inst = Instance::from_sizes(&[10, 1, 1], vec![0, 1, 2], 3).unwrap();
        let lb = lower_bound(&inst, Budget::Moves(3));
        assert!(lb >= 10); // largest job
        assert!(lb >= inst.avg_load_ceil());
    }

    #[test]
    fn lemma1_bound_kicks_in_for_small_k() {
        // All load on proc 0; with k=0 nothing moves so OPT = 12 and the G1
        // bound must say so (avg would only claim 6).
        let inst = Instance::from_sizes(&[4, 4, 4], vec![0, 0, 0], 2).unwrap();
        assert_eq!(lower_bound(&inst, Budget::Moves(0)), 12);
        assert_eq!(lower_bound(&inst, Budget::Moves(1)), 8);
        assert_eq!(lower_bound(&inst, Budget::Moves(3)), 6);
    }

    #[test]
    fn cost_budget_translates_to_moves_generously() {
        let jobs = vec![
            crate::model::Job::with_cost(4, 5),
            crate::model::Job::with_cost(4, 2),
            crate::model::Job::with_cost(4, 2),
        ];
        let inst = Instance::new(jobs, vec![0, 0, 0], 2).unwrap();
        // Budget 4 affords the two cheapest jobs.
        assert_eq!(max_moves_within(&inst, Budget::Cost(4)), 2);
        assert_eq!(max_moves_within(&inst, Budget::Cost(1)), 0);
        assert_eq!(max_moves_within(&inst, Budget::Cost(100)), 3);
    }

    #[test]
    fn near_max_sizes_do_not_overflow_bounds() {
        // Loads saturate at u64::MAX in the instance cache; every bound must
        // survive that without aborting under overflow-checks.
        let big = u64::MAX - 1;
        let inst = Instance::from_sizes(&[big, big, 7], vec![0, 0, 1], 2).unwrap();
        for k in 0..=3 {
            let lb = lower_bound(&inst, Budget::Moves(k));
            assert!(lb >= big, "k={k}");
        }
        // A cost budget near u64::MAX must not overflow the prefix sum.
        let jobs = vec![
            crate::model::Job::with_cost(1, big),
            crate::model::Job::with_cost(1, big),
        ];
        let ci = Instance::new(jobs, vec![0, 0], 2).unwrap();
        assert_eq!(max_moves_within(&ci, Budget::Cost(u64::MAX)), 1);
    }

    #[test]
    fn within_ratio_exact_arithmetic() {
        assert!(within_ratio(3, 2, 3, 2)); // 3 <= 1.5 * 2 exactly
        assert!(!within_ratio(4, 2, 3, 2)); // 4 > 3
        assert!(within_ratio(0, 0, 3, 2));
        // Large values that would overflow u64 multiplication.
        assert!(within_ratio(u64::MAX / 2, u64::MAX / 2, 3, 2));
    }
}
