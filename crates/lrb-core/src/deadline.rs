//! Solver work budgets, deadlines, and graceful-degradation fallback chains.
//!
//! A live rebalancer cannot afford an unbounded solver: the epoch ends
//! whether or not the PTAS finished. This module gives every algorithm in
//! the crate a *deterministic* work budget — measured in abstract work
//! ticks, not wall-clock, so runs are reproducible — with checked
//! cancellation points inside the algorithms' hot loops, and a
//! [`FallbackChain`] that degrades through progressively cheaper tiers
//! (PTAS → M-PARTITION → GREEDY → no-move) until one of them answers
//! within its budget.
//!
//! Guarantees:
//!
//! * [`FallbackChain::solve`] is **infallible**: it always returns a valid,
//!   budget-respecting assignment (the no-move assignment in the worst
//!   case), together with a provenance tag naming the tier that answered.
//! * Every tier is attempted at most once (the solvers are deterministic,
//!   so retrying an identical input is pointless); the chain length bounds
//!   the total number of attempts.
//! * For a fixed instance, relocation budget, and work budget the result is
//!   fully deterministic.

use std::cell::Cell;

use crate::error::{Error, Result};
use crate::greedy::{self, ReinsertOrder};
use crate::model::{Budget, Instance};
use crate::mpartition::{self, ThresholdSearch};
use crate::outcome::RebalanceOutcome;
use crate::ptas::{self, Precision};
use crate::{bounds, cost_partition};

/// A deterministic work budget shared by the solvers of one decision.
///
/// Work is measured in abstract *ticks* (roughly "one inner-loop iteration
/// or one DP state"). Algorithms call [`WorkBudget::charge`] at their
/// cancellation points; once the budget is exhausted the charge returns
/// [`Error::Cancelled`] and the algorithm unwinds without producing an
/// assignment. Tick accounting is `Cell`-based, so a budget is cheap to
/// consult but is **not** shareable across threads — each worker gets its
/// own.
#[derive(Debug)]
pub struct WorkBudget {
    limit: u64,
    consumed: Cell<u64>,
}

impl WorkBudget {
    /// A budget of `limit` work ticks.
    pub fn new(limit: u64) -> Self {
        WorkBudget {
            limit,
            consumed: Cell::new(0),
        }
    }

    /// A budget that never cancels.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Consume `ticks` of work on behalf of `phase`.
    ///
    /// # Errors
    ///
    /// [`Error::Cancelled`] once cumulative consumption exceeds the limit.
    /// The ticks are still recorded, so [`WorkBudget::consumed`] reflects
    /// the work attempted before cancellation.
    #[inline]
    pub fn charge(&self, phase: &'static str, ticks: u64) -> Result<()> {
        let consumed = self.consumed.get().saturating_add(ticks);
        self.consumed.set(consumed);
        if consumed > self.limit {
            Err(Error::Cancelled {
                phase,
                consumed,
                limit: self.limit,
            })
        } else {
            Ok(())
        }
    }

    /// A pure cancellation check: charges nothing, fails if already
    /// exhausted.
    #[inline]
    pub fn checkpoint(&self, phase: &'static str) -> Result<()> {
        if self.is_exhausted() {
            Err(Error::Cancelled {
                phase,
                consumed: self.consumed.get(),
                limit: self.limit,
            })
        } else {
            Ok(())
        }
    }

    /// Ticks consumed so far (may exceed the limit by the final charge).
    pub fn consumed(&self) -> u64 {
        self.consumed.get()
    }

    /// Ticks still available.
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.consumed.get())
    }

    /// Whether the budget has been used up.
    pub fn is_exhausted(&self) -> bool {
        self.consumed.get() >= self.limit
    }
}

/// The algorithms a [`DeadlineSolver`] can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverKind {
    /// The `(1+ε)` PTAS (§4) — best quality, exponential in `1/ε`.
    Ptas(Precision),
    /// M-PARTITION / cost-PARTITION (§3) — the 1.5-approximation workhorse.
    MPartition,
    /// The arbitrary-cost PARTITION variant (§3.2), forced even for move
    /// budgets.
    CostPartition,
    /// GREEDY (§2) — cheapest non-trivial tier.
    Greedy,
    /// Leave every job where it is. Never fails, never spends budget.
    NoMove,
}

impl SolverKind {
    /// Display / provenance name.
    pub fn name(&self) -> &'static str {
        match self {
            SolverKind::Ptas(_) => "ptas",
            SolverKind::MPartition => "m-partition",
            SolverKind::CostPartition => "cost-partition",
            SolverKind::Greedy => "greedy",
            SolverKind::NoMove => "no-move",
        }
    }
}

/// One algorithm wrapped with a work budget / deadline.
///
/// `solve` runs the algorithm with cancellation points checked against the
/// provided [`WorkBudget`] and post-validates that the produced assignment
/// respects the relocation budget (a non-unit-cost instance under a
/// `Moves` budget can make the cost-based tiers overshoot; the check turns
/// that into an error instead of a silent violation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineSolver {
    kind: SolverKind,
}

impl DeadlineSolver {
    /// Wrap an algorithm.
    pub fn new(kind: SolverKind) -> Self {
        DeadlineSolver { kind }
    }

    /// The wrapped algorithm's name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Run the algorithm under `work`, returning a budget-respecting
    /// outcome or the error that stopped it.
    pub fn solve(
        &self,
        inst: &Instance,
        budget: Budget,
        work: &WorkBudget,
    ) -> Result<RebalanceOutcome> {
        let outcome = match self.kind {
            SolverKind::NoMove => RebalanceOutcome::unchanged(inst),
            SolverKind::Greedy => {
                let k = match budget {
                    Budget::Moves(k) => k,
                    Budget::Cost(_) => bounds::max_moves_within(inst, budget),
                };
                greedy::rebalance_budgeted(inst, k, ReinsertOrder::Descending, work)?.0
            }
            SolverKind::MPartition => match budget {
                Budget::Moves(k) => {
                    mpartition::rebalance_budgeted(inst, k, ThresholdSearch::Binary, work)?.outcome
                }
                Budget::Cost(b) => cost_partition::rebalance_budgeted(inst, b, work)?.outcome,
            },
            SolverKind::CostPartition => {
                cost_partition::rebalance_budgeted(inst, budget.as_cost(), work)?.outcome
            }
            SolverKind::Ptas(precision) => {
                ptas::rebalance_budgeted(inst, budget.as_cost(), precision, work)?.outcome
            }
        };
        if budget.allows(inst, outcome.assignment()) {
            Ok(outcome)
        } else {
            let (used, limit) = match budget {
                Budget::Moves(k) => (outcome.moves() as u64, k as u64),
                Budget::Cost(b) => (outcome.cost(), b),
            };
            Err(Error::BudgetExceeded {
                used,
                budget: limit,
            })
        }
    }
}

/// Why a tier failed to answer, kept for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierFailure {
    /// Which tier failed.
    pub tier: &'static str,
    /// The error that stopped it.
    pub error: Error,
}

/// The answer of a [`FallbackChain`] run: always a valid assignment, plus
/// provenance saying which tier produced it and why earlier tiers failed.
#[derive(Debug, Clone)]
pub struct FallbackReport {
    /// The valid, budget-respecting outcome.
    pub outcome: RebalanceOutcome,
    /// Name of the tier that answered (`"no-move"` in the worst case).
    pub tier: &'static str,
    /// Index of the answering tier in the chain (equal to the chain length
    /// when the implicit final no-move answered).
    pub tier_index: usize,
    /// The failures of every tier tried before the answering one.
    pub failures: Vec<TierFailure>,
}

impl FallbackReport {
    /// Whether the chain had to degrade past its first tier.
    pub fn degraded(&self) -> bool {
        self.tier_index > 0
    }
}

/// An ordered list of solver tiers tried until one answers within its
/// work budget. An implicit no-move tier at the end makes the chain total.
#[derive(Debug, Clone)]
pub struct FallbackChain {
    tiers: Vec<DeadlineSolver>,
}

impl FallbackChain {
    /// Build a chain from explicit tiers (an implicit final no-move tier is
    /// always appended logically; listing [`SolverKind::NoMove`] explicitly
    /// is allowed but redundant).
    pub fn new(kinds: Vec<SolverKind>) -> Self {
        FallbackChain {
            tiers: kinds.into_iter().map(DeadlineSolver::new).collect(),
        }
    }

    /// The paper-ordered quality ladder: PTAS (`ε = 1`) → M-PARTITION →
    /// GREEDY → no-move.
    pub fn standard() -> Self {
        Self::new(vec![
            SolverKind::Ptas(Precision::from_q(5)),
            SolverKind::MPartition,
            SolverKind::Greedy,
        ])
    }

    /// The practical ladder for large instances (skips the PTAS):
    /// M-PARTITION → GREEDY → no-move.
    pub fn practical() -> Self {
        Self::new(vec![SolverKind::MPartition, SolverKind::Greedy])
    }

    /// Tier names in order, for display.
    pub fn tier_names(&self) -> Vec<&'static str> {
        self.tiers.iter().map(|t| t.name()).collect()
    }

    /// Run the chain. Infallible: if every tier fails (cancellation,
    /// infeasibility, budget violation), the no-move assignment answers.
    pub fn solve(&self, inst: &Instance, budget: Budget, work: &WorkBudget) -> FallbackReport {
        let mut failures = Vec::new();
        for (i, tier) in self.tiers.iter().enumerate() {
            match tier.solve(inst, budget, work) {
                Ok(outcome) => {
                    return FallbackReport {
                        outcome,
                        tier: tier.name(),
                        tier_index: i,
                        failures,
                    };
                }
                Err(error) => failures.push(TierFailure {
                    tier: tier.name(),
                    error,
                }),
            }
        }
        FallbackReport {
            outcome: RebalanceOutcome::unchanged(inst),
            tier: "no-move",
            tier_index: self.tiers.len(),
            failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn piled() -> Instance {
        Instance::from_sizes(&[9, 7, 5, 4, 3, 2], vec![0, 0, 0, 0, 0, 1], 3).unwrap()
    }

    #[test]
    fn work_budget_accounting() {
        let w = WorkBudget::new(10);
        assert!(w.charge("t", 4).is_ok());
        assert_eq!(w.consumed(), 4);
        assert_eq!(w.remaining(), 6);
        assert!(w.charge("t", 6).is_ok());
        assert!(w.is_exhausted());
        assert!(matches!(
            w.charge("t", 1),
            Err(Error::Cancelled { phase: "t", .. })
        ));
        assert!(w.checkpoint("t").is_err());

        let free = WorkBudget::unlimited();
        assert!(free.charge("t", u64::MAX / 2).is_ok());
        assert!(free.checkpoint("t").is_ok());
    }

    #[test]
    fn deadline_solver_answers_with_enough_budget() {
        let inst = piled();
        for kind in [
            SolverKind::Greedy,
            SolverKind::MPartition,
            SolverKind::CostPartition,
            SolverKind::Ptas(Precision::from_q(2)),
            SolverKind::NoMove,
        ] {
            let out = DeadlineSolver::new(kind)
                .solve(&inst, Budget::Moves(3), &WorkBudget::unlimited())
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert!(inst.move_count(out.assignment()) <= 3, "{}", kind.name());
        }
    }

    #[test]
    fn deadline_solver_cancels_on_tiny_budget() {
        let inst = piled();
        for kind in [
            SolverKind::Greedy,
            SolverKind::MPartition,
            SolverKind::CostPartition,
            SolverKind::Ptas(Precision::from_q(2)),
        ] {
            let err = DeadlineSolver::new(kind)
                .solve(&inst, Budget::Moves(3), &WorkBudget::new(1))
                .unwrap_err();
            assert!(
                matches!(err, Error::Cancelled { .. }),
                "{}: {err}",
                kind.name()
            );
        }
        // No-move ignores the work budget entirely.
        assert!(DeadlineSolver::new(SolverKind::NoMove)
            .solve(&inst, Budget::Moves(3), &WorkBudget::new(0))
            .is_ok());
    }

    #[test]
    fn chain_answers_from_first_tier_given_budget() {
        let inst = piled();
        let chain = FallbackChain::standard();
        let r = chain.solve(&inst, Budget::Moves(3), &WorkBudget::unlimited());
        assert_eq!(r.tier, "ptas");
        assert_eq!(r.tier_index, 0);
        assert!(!r.degraded());
        assert!(r.failures.is_empty());
        assert!(Budget::Moves(3).allows(&inst, r.outcome.assignment()));
    }

    #[test]
    fn chain_degrades_to_no_move_on_zero_work() {
        let inst = piled();
        let chain = FallbackChain::standard();
        let r = chain.solve(&inst, Budget::Moves(3), &WorkBudget::new(0));
        assert_eq!(r.tier, "no-move");
        assert!(r.degraded());
        assert_eq!(r.failures.len(), 3);
        assert_eq!(r.outcome.moves(), 0);
        assert!(r
            .failures
            .iter()
            .all(|f| matches!(f.error, Error::Cancelled { .. })));
    }

    #[test]
    fn chain_lands_on_intermediate_tier_for_medium_work() {
        // Find a work budget where the PTAS cancels but a cheaper tier
        // still answers; sweep budgets to prove every landing tier is
        // valid and provenance is consistent.
        let inst = piled();
        let chain = FallbackChain::standard();
        let mut seen = std::collections::BTreeSet::new();
        for w in [0, 1, 5, 20, 100, 1000, 100_000, u64::MAX] {
            let r = chain.solve(&inst, Budget::Moves(2), &WorkBudget::new(w));
            assert!(
                Budget::Moves(2).allows(&inst, r.outcome.assignment()),
                "w={w}"
            );
            assert_eq!(r.tier_index > 0, r.degraded(), "w={w}");
            assert_eq!(r.failures.len(), r.tier_index, "w={w}");
            seen.insert(r.tier);
        }
        // At the extremes we must have seen both the best and worst tiers.
        assert!(seen.contains("ptas"));
        assert!(seen.contains("no-move"));
    }

    #[test]
    fn chain_is_deterministic() {
        let inst = piled();
        let chain = FallbackChain::practical();
        for w in [0u64, 37, 1_000, u64::MAX] {
            let a = chain.solve(&inst, Budget::Moves(2), &WorkBudget::new(w));
            let b = chain.solve(&inst, Budget::Moves(2), &WorkBudget::new(w));
            assert_eq!(a.outcome.assignment(), b.outcome.assignment(), "w={w}");
            assert_eq!(a.tier, b.tier, "w={w}");
        }
    }

    #[test]
    fn cost_budgets_flow_through_the_chain() {
        let jobs = vec![
            crate::model::Job::with_cost(9, 4),
            crate::model::Job::with_cost(7, 2),
            crate::model::Job::with_cost(6, 5),
            crate::model::Job::with_cost(5, 1),
        ];
        let inst = Instance::new(jobs, vec![0, 0, 0, 1], 2).unwrap();
        let chain = FallbackChain::standard();
        for b in 0..=12 {
            let r = chain.solve(&inst, Budget::Cost(b), &WorkBudget::unlimited());
            assert!(inst.move_cost(r.outcome.assignment()) <= b, "b={b}");
        }
    }

    #[test]
    fn budget_exhausts_mid_tier_and_later_tiers_cancel_at_entry() {
        // Find a work budget that the first tier *partially* consumes
        // before cancelling — exhaustion strikes inside the tier, not at
        // its first checkpoint. The shared WorkBudget then arrives at
        // every later tier already spent, so each cancels immediately and
        // the chain still answers (no-move at worst), never panicking.
        let inst = piled();
        let chain = FallbackChain::standard();
        let mut hit_mid_tier = false;
        for limit in 1..200u64 {
            let work = WorkBudget::new(limit);
            let r = chain.solve(&inst, Budget::Moves(3), &work);
            // The chain is total regardless of where exhaustion lands.
            assert!(Budget::Moves(3).allows(&inst, r.outcome.assignment()));
            let Some(first) = r.failures.first() else {
                continue; // first tier answered: budget never hit zero
            };
            let Error::Cancelled { consumed, .. } = first.error else {
                panic!("tier failed for a non-cancellation reason: {first:?}");
            };
            // `consumed > limit` means the tier charged ticks past the
            // line mid-solve (a checkpoint-at-entry failure reports
            // exactly the prior consumption, which checkpoint() caps at
            // the recorded value with no new charge).
            if consumed > limit && limit > 1 {
                hit_mid_tier = true;
                // Every subsequent failure sees an exhausted budget.
                for later in &r.failures[1..] {
                    let Error::Cancelled {
                        consumed: c,
                        limit: l,
                        ..
                    } = later.error
                    else {
                        panic!("later tier failed oddly: {later:?}");
                    };
                    assert!(c >= l, "later tiers must cancel on arrival");
                }
                assert!(work.is_exhausted());
                assert_eq!(work.remaining(), 0);
            }
        }
        assert!(hit_mid_tier, "no budget exhausted inside a tier");
    }
}
