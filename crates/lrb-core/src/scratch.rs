//! Reusable scratch arenas for the rebalancing hot paths.
//!
//! Solving one instance allocates a handful of short-lived buffers: sorted
//! per-processor job stacks, prefix-sum profiles, heap storage, removal
//! lists, the candidate-threshold ladder. A batch executor solving thousands
//! of instances per second pays that allocator traffic on every call. A
//! [`Scratch`] owns all of those buffers so a worker can clear-and-refill
//! them across calls: after the first solve of a given shape, the GREEDY /
//! M-PARTITION hot paths perform no heap allocation beyond the returned
//! assignment itself (and, for cost-PARTITION, its knapsack plans).
//!
//! The scratch also carries a [`ThresholdLadder`]: M-PARTITION's candidate
//! thresholds depend on the *job-size multiset* (doubled sizes) and on the
//! *placement* (prefix sums). The multiset part — the global ascending size
//! array — is cached across calls keyed by an order-independent fingerprint,
//! so a batch of same-multiset instances (e.g. the same jobs under many
//! candidate placements) re-sorts the sizes once instead of per instance.
//! See DESIGN.md §9 for the memory layout and invalidation rules.

use std::cmp::Reverse;

use crate::model::{Job, JobId, ProcId, Size};
use crate::profiles::Profiles;

/// Per-worker reusable buffers for the core solvers.
///
/// Create one per thread (it is deliberately `!Sync`-agnostic plain data —
/// share nothing, reuse everything) and pass it to the `*_scratch` entry
/// points of [`crate::greedy`], [`crate::mpartition`], [`crate::partition`],
/// and [`crate::cost_partition`]. Buffers grow to the largest instance seen
/// and stay at that capacity; call sites never need to size anything.
#[derive(Debug, Default)]
pub struct Scratch {
    pub(crate) greedy: GreedyScratch,
    pub(crate) partition: PartitionScratch,
    pub(crate) profiles: Profiles,
    pub(crate) candidates: Vec<Size>,
    pub(crate) ladder: ThresholdLadder,
    pub(crate) hetero: HeteroScratch,
}

impl Scratch {
    /// A fresh scratch with empty (unallocated) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// How often the threshold-ladder cache was reused across calls.
    pub fn ladder_hits(&self) -> u64 {
        self.ladder.hits
    }

    /// How often the threshold-ladder cache had to be rebuilt.
    pub fn ladder_misses(&self) -> u64 {
        self.ladder.misses
    }
}

/// Buffers for GREEDY's removal and reinsertion phases.
#[derive(Debug, Default)]
pub(crate) struct GreedyScratch {
    /// Live per-processor loads.
    pub loads: Vec<Size>,
    /// Per-processor job stacks, ascending by size (largest popped first).
    pub per_proc: Vec<Vec<JobId>>,
    /// Backing storage for the removal-phase lazy max-heap.
    pub max_heap: Vec<(Size, ProcId)>,
    /// Backing storage for the reinsertion min-heap.
    pub min_heap: Vec<Reverse<(Size, ProcId)>>,
    /// Jobs removed in phase 1, in removal order.
    pub removed: Vec<JobId>,
    /// Removed jobs re-sorted into the requested reinsertion order.
    pub order_buf: Vec<JobId>,
}

/// Buffers for the speed-scaled (uniform-machine) solvers in
/// [`crate::hetero`]: GREEDY's removal/reinsertion state plus the
/// threshold-probe capacities and shed list.
#[derive(Debug, Default)]
pub(crate) struct HeteroScratch {
    /// Live per-processor raw loads.
    pub loads: Vec<Size>,
    /// Per-processor job stacks, ascending by size (largest popped first).
    pub per_proc: Vec<Vec<JobId>>,
    /// Jobs removed by GREEDY phase 1, in removal order.
    pub removed: Vec<JobId>,
    /// Removed jobs re-sorted into reinsertion order.
    pub order_buf: Vec<JobId>,
    /// Per-processor raw capacities `⌊x·v_q / v⌋` at the probed threshold.
    pub caps: Vec<Size>,
    /// Jobs shed by overfull processors at the probed threshold.
    pub shed: Vec<JobId>,
}

/// Buffers for PARTITION's six steps (shared by the cost variant).
#[derive(Debug, Default)]
pub(crate) struct PartitionScratch {
    /// Live per-processor loads.
    pub loads: Vec<Size>,
    /// Step 1: the kept (smallest) large job per processor, if any.
    pub kept_large: Vec<Option<JobId>>,
    /// Step 2/3 ranking buffer: `(c_i, no-large tiebreak, proc)`.
    pub cs: Vec<(i64, bool, ProcId)>,
    /// Step 3 selection flags.
    pub is_selected: Vec<bool>,
    /// Cost variant: which selected processors keep their large job.
    pub keeps_large: Vec<bool>,
    /// Large jobs awaiting a Step 5 slot.
    pub homeless_large: Vec<JobId>,
    /// Small jobs awaiting Step 6 reinsertion.
    pub removed_small: Vec<JobId>,
    /// Step 5: selected large-free processors.
    pub free_procs: Vec<ProcId>,
    /// Backing storage for the Step 6 min-heap.
    pub min_heap: Vec<Reverse<(Size, ProcId)>>,
}

impl PartitionScratch {
    /// Reset the per-run buffers for an instance with `m` processors.
    pub(crate) fn reset(&mut self, m: usize) {
        self.kept_large.clear();
        self.kept_large.resize(m, None);
        self.is_selected.clear();
        self.is_selected.resize(m, false);
        self.keeps_large.clear();
        self.keeps_large.resize(m, false);
        self.cs.clear();
        self.homeless_large.clear();
        self.removed_small.clear();
        self.free_procs.clear();
    }
}

/// Cache of the multiset-dependent half of M-PARTITION's threshold ladder.
///
/// The Lemma 5 candidate set is `{2·p_j} ∪ {B_l, 2·B_l}`: the doubled job
/// sizes depend only on the job-size *multiset*, the prefix sums on the
/// placement. This cache keys the sorted global size array on an
/// order-independent fingerprint of the multiset, so consecutive solves over
/// the same jobs (a batch of candidate placements, an epoch of what-if
/// probes) skip the `O(n log n)` re-sort.
///
/// Invalidation: the fingerprint folds the job count, the total size, and a
/// commutative hash of each size, so *any* change to the multiset — adding,
/// removing, or resizing a job — misses and rebuilds. Hash collisions would
/// reuse a stale ladder; the fingerprint has 64 bits of mixing, and debug
/// builds additionally verify the cached array against a fresh sort.
#[derive(Debug, Default)]
pub struct ThresholdLadder {
    fingerprint: Option<u64>,
    pub(crate) sizes_asc: Vec<Size>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl ThresholdLadder {
    /// Order-independent fingerprint of the job-size multiset.
    pub(crate) fn fingerprint_of(jobs: &[Job]) -> u64 {
        let mut acc = 0u64;
        let mut total = 0u64;
        for j in jobs {
            acc = acc.wrapping_add(size_term(j.size));
            total = total.wrapping_add(j.size);
        }
        finalize_fingerprint(acc, total, jobs.len())
    }

    /// Install an externally maintained sorted size array and its fingerprint
    /// so the next [`Self::sizes_asc_into`] over the same multiset hits the
    /// cache without re-sorting. Callers maintaining the multiset
    /// incrementally (see [`crate::incremental::SizeMultiset`]) use this to
    /// keep a warm ladder across arrivals and departures. Neither a hit nor a
    /// miss is counted; debug builds verify primed data on the next lookup.
    pub(crate) fn prime(&mut self, fingerprint: u64, sizes_asc: &[Size]) {
        debug_assert!(sizes_asc.windows(2).all(|w| w[0] <= w[1]));
        self.sizes_asc.clear();
        self.sizes_asc.extend_from_slice(sizes_asc);
        self.fingerprint = Some(fingerprint);
    }

    /// Fill `out` with the instance's sizes in ascending order, reusing the
    /// cached sort when the multiset fingerprint matches.
    pub(crate) fn sizes_asc_into(&mut self, jobs: &[Job], out: &mut Vec<Size>) {
        let fp = Self::fingerprint_of(jobs);
        if self.fingerprint == Some(fp) && self.sizes_asc.len() == jobs.len() {
            self.hits += 1;
            out.clone_from(&self.sizes_asc);
            debug_assert_eq!(
                {
                    let mut check: Vec<Size> = jobs.iter().map(|j| j.size).collect();
                    check.sort_unstable();
                    check
                },
                *out,
                "threshold-ladder fingerprint collision"
            );
            return;
        }
        self.misses += 1;
        out.clear();
        out.extend(jobs.iter().map(|j| j.size));
        out.sort_unstable();
        self.sizes_asc.clone_from(out);
        self.fingerprint = Some(fp);
    }
}

/// Per-size contribution to the commutative multiset fingerprint. Incremental
/// maintainers add this on insert and subtract it (wrapping) on remove.
pub(crate) fn size_term(size: Size) -> u64 {
    mix(size.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// Fold the commutative accumulator, total size, and count into the final
/// fingerprint. Must stay in lockstep with [`ThresholdLadder::fingerprint_of`].
pub(crate) fn finalize_fingerprint(acc: u64, total: u64, len: usize) -> u64 {
    mix(acc ^ mix(total) ^ (len as u64).rotate_left(32))
}

/// splitmix64 finalizer — the same mixer the harness uses for seeds.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Instance;

    fn jobs_of(sizes: &[u64]) -> Vec<Job> {
        sizes.iter().map(|&s| Job::unit(s)).collect()
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = ThresholdLadder::fingerprint_of(&jobs_of(&[3, 1, 4, 1, 5]));
        let b = ThresholdLadder::fingerprint_of(&jobs_of(&[5, 4, 3, 1, 1]));
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_multisets() {
        let base = ThresholdLadder::fingerprint_of(&jobs_of(&[3, 1, 4]));
        for other in [&[3u64, 1, 5][..], &[3, 1], &[3, 1, 4, 4], &[3, 2, 3]] {
            assert_ne!(base, ThresholdLadder::fingerprint_of(&jobs_of(other)));
        }
        // Same sum, same count, different multiset.
        assert_ne!(
            ThresholdLadder::fingerprint_of(&jobs_of(&[2, 2])),
            ThresholdLadder::fingerprint_of(&jobs_of(&[1, 3])),
        );
    }

    #[test]
    fn ladder_hits_on_same_multiset_misses_on_change() {
        let mut ladder = ThresholdLadder::default();
        let mut out = Vec::new();
        ladder.sizes_asc_into(&jobs_of(&[4, 2, 9]), &mut out);
        assert_eq!(out, vec![2, 4, 9]);
        assert_eq!((ladder.hits, ladder.misses), (0, 1));

        // Same multiset, different order: hit, same answer.
        ladder.sizes_asc_into(&jobs_of(&[9, 4, 2]), &mut out);
        assert_eq!(out, vec![2, 4, 9]);
        assert_eq!((ladder.hits, ladder.misses), (1, 1));

        // Changed multiset: miss, rebuilt.
        ladder.sizes_asc_into(&jobs_of(&[9, 4, 3]), &mut out);
        assert_eq!(out, vec![3, 4, 9]);
        assert_eq!((ladder.hits, ladder.misses), (1, 2));
    }

    #[test]
    fn primed_ladder_hits_without_a_prior_miss() {
        let jobs = jobs_of(&[9, 4, 2]);
        let mut ladder = ThresholdLadder::default();
        ladder.prime(ThresholdLadder::fingerprint_of(&jobs), &[2, 4, 9]);
        let mut out = Vec::new();
        ladder.sizes_asc_into(&jobs, &mut out);
        assert_eq!(out, vec![2, 4, 9]);
        assert_eq!((ladder.hits, ladder.misses), (1, 0));
    }

    #[test]
    fn scratch_reuse_grows_but_never_shrinks_buffers() {
        let mut scratch = Scratch::new();
        let big = Instance::from_sizes(&[9, 8, 7, 6, 5, 4, 3, 2], vec![0; 8], 4).unwrap();
        let small = Instance::from_sizes(&[2, 1], vec![0, 0], 2).unwrap();
        crate::greedy::rebalance_scratch(&big, 4, &mut scratch).unwrap();
        let cap = scratch.greedy.removed.capacity();
        crate::greedy::rebalance_scratch(&small, 1, &mut scratch).unwrap();
        assert!(scratch.greedy.removed.capacity() >= cap);
    }
}
