//! The paper's `PARTITION` algorithm (§3): given a makespan guess `T`, reach
//! a *half-optimal* configuration using the provably minimum number of
//! removals, then reassign greedily.
//!
//! When the guess satisfies `T ≤ OPT` and the run is feasible, the resulting
//! makespan is at most `1.5·OPT` and the number of moves is at most that of
//! any algorithm achieving makespan `≤ T` (Lemmas 3–4, Theorem 2). Feeding
//! it the right guess is [`crate::mpartition`]'s job.
//!
//! Steps, following the paper:
//!
//! 1. From each processor with large jobs (`2·size > T`), remove all large
//!    jobs except the smallest (`L_E` removals).
//! 2. Compute `a_i`, `b_i`, `c_i = a_i − b_i` per processor (see
//!    [`crate::profiles`] for the exact definitions used).
//! 3. Select the `L_T` processors with the smallest `c_i`, preferring
//!    processors holding a large job on ties; remove their `a_i` largest
//!    small jobs.
//! 4. From the unselected processors remove `b_i` jobs (their kept large job
//!    if any, plus largest-first small jobs until the small load is `≤ T`).
//! 5. Assign every homeless large job to a distinct selected large-free
//!    processor (the counting works out exactly; see DESIGN.md §5).
//! 6. Reassign the removed small jobs one-by-one to the currently
//!    minimum-loaded processor.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lrb_obs::{names, NoopRecorder, Recorder};

use crate::error::{Error, Result};
use crate::model::{Instance, ProcId, Size};
use crate::outcome::RebalanceOutcome;
use crate::profiles::Profiles;
use crate::scratch::{PartitionScratch, Scratch};

/// Diagnostics of a PARTITION run, exposing the paper's named quantities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStats {
    /// The makespan guess the run used.
    pub guess: Size,
    /// Total number of large jobs `L_T`.
    pub l_t: usize,
    /// Number of processors holding at least one large job `m_L`.
    pub m_l: usize,
    /// Number of *extra* large jobs removed in Step 1 (`L_E = L_T − m_L`).
    pub l_e: usize,
    /// The selected processors of Step 3.
    pub selected: Vec<ProcId>,
    /// Removals planned by the algorithm (Step 1 + `a_i` over selected +
    /// `b_i` over unselected). The realized move count can be lower if the
    /// greedy reassignment returns a job to its original processor.
    pub planned_moves: usize,
}

/// Result of a PARTITION run: the outcome plus diagnostics.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    /// The rebalanced assignment and its bookkeeping.
    pub outcome: RebalanceOutcome,
    /// The paper's quantities for this run.
    pub stats: PartitionStats,
}

/// Number of removals PARTITION would plan at guess `t`, without building
/// the assignment; `None` when the guess is infeasible (`L_T > m`).
///
/// This is the quantity `M-PARTITION` thresholds on: `L_E + Σ_selected a_i +
/// Σ_unselected b_i`, with the selection minimizing the total.
pub fn planned_moves(profiles: &Profiles, t: Size) -> Option<usize> {
    planned_moves_with(profiles, t, &mut Vec::new())
}

/// [`planned_moves`] against a caller-owned ranking buffer, so M-PARTITION's
/// threshold probes reuse one allocation across the whole search.
pub(crate) fn planned_moves_with(
    profiles: &Profiles,
    t: Size,
    cs: &mut Vec<(i64, bool, ProcId)>,
) -> Option<usize> {
    let m = profiles.num_procs();
    let l_t = profiles.l_t(t);
    if l_t > m {
        return None;
    }
    let m_l = profiles.m_l(t);
    let l_e = l_t.saturating_sub(m_l);

    let mut base = l_e;
    // Σ b_i over all processors, plus the selected processors' c_i.
    cs.clear();
    cs.extend((0..m).map(|p| {
        base += profiles.b(p, t);
        (profiles.c(p, t), !profiles.has_large(p, t), p)
    }));
    // Smallest c first; ties prefer large-holding processors (false < true).
    cs.sort_unstable();
    let selected_extra: i64 = cs.iter().take(l_t).map(|&(c, _, _)| c).sum();
    // base + Σ_selected (a_i − b_i) = L_E + Σ_sel a_i + Σ_unsel b_i.
    Some((base as i64).saturating_add(selected_extra) as usize)
}

/// Run PARTITION at makespan guess `t`.
///
/// # Errors
///
/// Returns [`Error::InfeasibleGuess`] when there are more large jobs than
/// processors, which certifies `t < OPT`.
pub fn run(inst: &Instance, t: Size) -> Result<PartitionRun> {
    let profiles = Profiles::new(inst);
    run_with_profiles(inst, &profiles, t)
}

/// [`run`] against precomputed profiles (used by M-PARTITION to avoid
/// rebuilding them per guess).
pub fn run_with_profiles(inst: &Instance, profiles: &Profiles, t: Size) -> Result<PartitionRun> {
    run_with_profiles_recorded(inst, profiles, t, &NoopRecorder)
}

/// [`run_with_profiles`] with instrumentation: each of the paper's six steps
/// is timed as its own phase (`partition.step1_strip` …
/// `partition.step6_reinsert`) and the planned large/small removals are
/// counted (`partition.large_removed` / `partition.small_removed`).
pub fn run_with_profiles_recorded<R: Recorder>(
    inst: &Instance,
    profiles: &Profiles,
    t: Size,
    rec: &R,
) -> Result<PartitionRun> {
    run_impl(inst, profiles, t, rec, &mut PartitionScratch::default())
}

/// [`run_with_profiles_recorded`] against a reusable [`Scratch`]: identical
/// output, with every working buffer (selection ranking, removal lists, the
/// reinsertion heap) recycled across calls.
pub fn run_with_profiles_scratch_recorded<R: Recorder>(
    inst: &Instance,
    profiles: &Profiles,
    t: Size,
    rec: &R,
    scratch: &mut Scratch,
) -> Result<PartitionRun> {
    run_impl(inst, profiles, t, rec, &mut scratch.partition)
}

pub(crate) fn run_impl<R: Recorder>(
    inst: &Instance,
    profiles: &Profiles,
    t: Size,
    rec: &R,
    s: &mut PartitionScratch,
) -> Result<PartitionRun> {
    let m = inst.num_procs();
    let l_t = profiles.l_t(t);
    if l_t > m {
        return Err(Error::InfeasibleGuess {
            guess: t,
            reason: "more large jobs than processors",
        });
    }
    let m_l = profiles.m_l(t);
    let l_e = l_t.saturating_sub(m_l);

    let mut assignment = inst.initial().clone();
    s.reset(m);
    s.loads.clear();
    s.loads.extend_from_slice(inst.initial_loads());
    let mut planned = 0usize;

    // Step 1: strip extra large jobs, keeping the smallest large per
    // processor. Profiles sort each processor's jobs ascending, so the kept
    // large is the first one past the small prefix.
    // kept_large[p] = Some(job) for processors holding a large after Step 1.
    let step1 = rec.time(names::PARTITION_STEP1_STRIP);
    for p in 0..m {
        let prof = profiles.proc(p);
        let sc = profiles.small_count(p, t);
        if sc < prof.len() {
            s.kept_large[p] = Some(prof.jobs_asc[sc]);
            for &j in &prof.jobs_asc[sc.saturating_add(1)..] {
                s.homeless_large.push(j);
                s.loads[p] -= inst.size(j);
                planned += 1;
            }
        }
    }
    debug_assert_eq!(planned, l_e);
    drop(step1);

    // Step 2 + 3: rank processors by c_i and select L_T of them.
    let step2 = rec.time(names::PARTITION_STEP2_RANK);
    s.cs.clear();
    s.cs.extend((0..m).map(|p| (profiles.c(p, t), s.kept_large[p].is_none(), p)));
    s.cs.sort_unstable();
    for &(_, _, p) in s.cs.iter().take(l_t) {
        s.is_selected[p] = true;
    }
    let selected: Vec<ProcId> = (0..m).filter(|&p| s.is_selected[p]).collect();
    drop(step2);

    for p in 0..m {
        let prof = profiles.proc(p);
        let sc = profiles.small_count(p, t);
        if s.is_selected[p] {
            // Step 3: shed the a_i largest small jobs (end of the small
            // prefix), keeping the large job if present.
            let _t = rec.time(names::PARTITION_STEP3_SHED_SELECTED);
            let a = profiles.a(p, t);
            for &j in &prof.jobs_asc[sc.saturating_sub(a)..sc] {
                s.removed_small.push(j);
                s.loads[p] -= inst.size(j);
                planned += 1;
            }
        } else {
            // Step 4: shed the kept large (mandatory) plus largest-first
            // small jobs until the small total fits in t.
            let _t = rec.time(names::PARTITION_STEP4_SHED_UNSELECTED);
            let b = profiles.b(p, t);
            let mut small_removals = b;
            if let Some(j) = s.kept_large[p] {
                s.homeless_large.push(j);
                s.loads[p] -= inst.size(j);
                s.kept_large[p] = None;
                small_removals -= 1;
            }
            for &j in &prof.jobs_asc[sc.saturating_sub(small_removals)..sc] {
                s.removed_small.push(j);
                s.loads[p] -= inst.size(j);
            }
            planned += b;
        }
    }
    rec.incr(
        names::PARTITION_LARGE_REMOVED,
        s.homeless_large.len() as u64,
    );
    rec.incr(names::PARTITION_SMALL_REMOVED, s.removed_small.len() as u64);

    // Step 5 (covers the paper's Steps 4-5 reassignments): place homeless
    // large jobs on distinct selected large-free processors — largest job
    // onto the least-loaded such processor first.
    let step5 = rec.time(names::PARTITION_STEP5_PLACE_LARGE);
    s.free_procs.extend(
        selected
            .iter()
            .copied()
            .filter(|&p| s.kept_large[p].is_none()),
    );
    debug_assert_eq!(
        s.free_procs.len(),
        s.homeless_large.len(),
        "large-free slot count must match homeless large jobs"
    );
    let loads = &s.loads;
    s.free_procs.sort_by_key(|&p| (loads[p], p));
    s.homeless_large.sort_by_key(|&j| Reverse(inst.size(j)));
    for (&j, &p) in s.homeless_large.iter().zip(&s.free_procs) {
        assignment[j] = p;
        s.loads[p] += inst.size(j);
    }
    drop(step5);

    // Step 6: greedy min-load placement of the removed small jobs,
    // largest first.
    let step6 = rec.time(names::PARTITION_STEP6_REINSERT);
    s.removed_small.sort_by_key(|&j| Reverse(inst.size(j)));
    let mut heap_buf = std::mem::take(&mut s.min_heap);
    heap_buf.clear();
    heap_buf.extend(s.loads.iter().enumerate().map(|(p, &l)| Reverse((l, p))));
    let mut heap = BinaryHeap::from(heap_buf);
    for &j in &s.removed_small {
        let Reverse((load, p)) = heap.pop().ok_or(Error::NoProcessors)?;
        assignment[j] = p;
        heap.push(Reverse((load.saturating_add(inst.size(j)), p)));
    }
    s.min_heap = heap.into_vec();
    drop(step6);

    let outcome = RebalanceOutcome::from_assignment(inst, assignment)?;
    debug_assert!(
        outcome.moves() <= planned,
        "realized moves cannot exceed planned removals"
    );
    Ok(PartitionRun {
        outcome,
        stats: PartitionStats {
            guess: t,
            l_t,
            m_l,
            l_e,
            selected,
            planned_moves: planned,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Theorem 2 tightness instance: 2 processors, proc 0 holds
    /// sizes {1, 2} (i.e. {½, 1} scaled by 2), proc 1 holds {1}; k = 1,
    /// OPT = 2.
    fn tightness() -> Instance {
        Instance::from_sizes(&[1, 2, 1], vec![0, 0, 1], 2).unwrap()
    }

    #[test]
    fn planned_moves_matches_run() {
        let inst = Instance::from_sizes(&[7, 2, 3, 4, 6, 1], vec![0, 0, 0, 1, 1, 2], 3).unwrap();
        let profiles = Profiles::new(&inst);
        for t in [6u64, 8, 10, 12, 14, 20] {
            let counted = planned_moves(&profiles, t);
            match run_with_profiles(&inst, &profiles, t) {
                Ok(run) => assert_eq!(counted, Some(run.stats.planned_moves), "t={t}"),
                Err(_) => assert_eq!(counted, None, "t={t}"),
            }
        }
    }

    #[test]
    fn infeasible_when_too_many_large_jobs() {
        // 3 jobs of size 10 on 2 processors; t = 10 makes all three large
        // (2*10 > 10), L_T = 3 > m = 2.
        let inst = Instance::from_sizes(&[10, 10, 10], vec![0, 0, 1], 2).unwrap();
        assert!(matches!(run(&inst, 10), Err(Error::InfeasibleGuess { .. })));
        let profiles = Profiles::new(&inst);
        assert_eq!(planned_moves(&profiles, 10), None);
    }

    #[test]
    fn paper_tightness_instance_makes_no_moves() {
        // With the true OPT = 2 as the guess, the paper shows PARTITION
        // makes no moves (L_T = 1, L_E = 0, a = b = 0 on proc 0 once the
        // size-2 job is the kept large; proc 1 fits), leaving makespan 3 =
        // 1.5 * OPT exactly.
        let inst = tightness();
        let run = run(&inst, 2).unwrap();
        assert_eq!(run.stats.l_t, 1);
        assert_eq!(run.stats.l_e, 0);
        assert_eq!(run.stats.planned_moves, 0);
        assert_eq!(run.outcome.makespan(), 3);
        assert_eq!(run.outcome.moves(), 0);
    }

    #[test]
    fn achieves_1_5_bound_at_true_opt() {
        // Everything on proc 0: sizes {4,3,3,2}; m=2. With k=2 the optimum
        // moves {4,2} or {3,3} across, OPT = 6.
        let inst = Instance::from_sizes(&[4, 3, 3, 2], vec![0, 0, 0, 0], 2).unwrap();
        let run = run(&inst, 6).unwrap();
        // 2 * makespan <= 3 * OPT.
        assert!(
            2 * run.outcome.makespan() <= 3 * 6,
            "makespan {}",
            run.outcome.makespan()
        );
        assert!(
            run.stats.planned_moves <= 2,
            "planned {}",
            run.stats.planned_moves
        );
    }

    #[test]
    fn selected_processors_count_is_l_t() {
        let inst = Instance::from_sizes(&[9, 8, 1, 1, 1, 1], vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        // t = 9: larges are 9 and 8 (2s > 9), both on proc 0 -> L_T = 2, m_L = 1.
        let run = run(&inst, 9).unwrap();
        assert_eq!(run.stats.l_t, 2);
        assert_eq!(run.stats.m_l, 1);
        assert_eq!(run.stats.l_e, 1);
        assert_eq!(run.stats.selected.len(), 2);
        // After the run each processor carries at most one large job.
        let loads = inst.loads_of(run.outcome.assignment()).unwrap();
        for (p, &l) in loads.iter().enumerate() {
            let larges = run
                .outcome
                .assignment()
                .iter()
                .enumerate()
                .filter(|&(j, &q)| q == p && 2 * inst.size(j) > 9)
                .count();
            assert!(larges <= 1, "proc {p} load {l} has {larges} large jobs");
        }
    }

    #[test]
    fn huge_guess_means_identity() {
        let inst = Instance::from_sizes(&[5, 4, 3], vec![0, 0, 1], 2).unwrap();
        let t = 2 * inst.total_size();
        let run = run(&inst, t).unwrap();
        assert_eq!(run.stats.planned_moves, 0);
        assert_eq!(run.outcome.assignment(), inst.initial());
    }

    #[test]
    fn all_large_distinct_processors() {
        // One large job per processor, guess tight: nothing should move.
        let inst = Instance::from_sizes(&[10, 10, 10], vec![0, 1, 2], 3).unwrap();
        let run = run(&inst, 10).unwrap();
        assert_eq!(run.stats.l_t, 3);
        assert_eq!(run.stats.planned_moves, 0);
        assert_eq!(run.outcome.makespan(), 10);
    }

    #[test]
    fn spreads_piled_up_large_jobs() {
        // Three large jobs piled on proc 0 of 3: Step 1 removes two, Step 5
        // spreads them; result is perfectly balanced with 2 moves.
        let inst = Instance::from_sizes(&[10, 10, 10], vec![0, 0, 0], 3).unwrap();
        let run = run(&inst, 10).unwrap();
        assert_eq!(run.stats.l_e, 2);
        assert_eq!(run.stats.planned_moves, 2);
        assert_eq!(run.outcome.makespan(), 10);
        assert_eq!(run.outcome.moves(), 2);
    }

    #[test]
    fn empty_instance_runs() {
        let inst = Instance::from_sizes(&[], vec![], 2).unwrap();
        let run = run(&inst, 0).unwrap();
        assert_eq!(run.outcome.makespan(), 0);
    }
}
