//! PARTITION for arbitrary relocation costs (§3.2).
//!
//! The structure mirrors the unit-cost algorithm, with two changes the
//! paper prescribes:
//!
//! * the per-processor counters `a_i`/`b_i` become *costs*, computed by a
//!   knapsack ("keep the most relocation cost subject to a size cap", see
//!   [`crate::knapsack`]); among a processor's large jobs the **most
//!   costly** one is kept;
//! * the makespan value is guessed by binary search; for each guess `A` the
//!   algorithm finds an assignment of makespan `≤ 1.5·A` whose removal cost
//!   is at most the cheapest way to achieve makespan `≤ A`, and the guess is
//!   accepted when that cost fits the budget `B`.
//!
//! Because sizes are integers, the binary search runs over integer
//! makespans and the paper's `(1+α)` guessing error disappears: the
//! result is within `1.5·OPT_B` whenever the planned cost is monotone
//! non-increasing in the guess (verified empirically by the T7/T14-style
//! property tests, as for M-PARTITION).
//!
//! The knapsack solver may fall back to a best-effort solution on
//! pathological inputs; that only ever *over*-estimates removal costs, so a
//! returned plan never violates the budget — it can only make the chosen
//! makespan guess slightly conservative (the paper's `ε`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lrb_obs::{names, NoopRecorder, Recorder};

use crate::deadline::WorkBudget;
use crate::error::{Error, Result};
use crate::knapsack::{max_cost_keep_bounded_recorded, Item, DEFAULT_NODE_BUDGET};
use crate::model::{Cost, Instance, JobId, Size};
use crate::outcome::RebalanceOutcome;
use crate::scratch::{PartitionScratch, Scratch};

/// Per-processor plan for one makespan guess.
#[derive(Debug, Clone)]
struct ProcPlan {
    /// Cost of the Step 1+3 variant: keep the costliest large job (shedding
    /// the rest) and keep smalls of maximum cost within size `A/2`.
    a_cost: Cost,
    /// Jobs removed under the `a` plan.
    a_removed: Vec<JobId>,
    /// Cost of the Step 4 variant: shed *all* large jobs and keep smalls of
    /// maximum cost within size `A`.
    b_cost: Cost,
    /// Jobs removed under the `b` plan.
    b_removed: Vec<JobId>,
    /// Whether the processor holds at least one large job.
    has_large: bool,
}

/// Result of a cost-PARTITION run.
#[derive(Debug, Clone)]
pub struct CostPartitionRun {
    /// The rebalanced assignment and its bookkeeping.
    pub outcome: RebalanceOutcome,
    /// The makespan guess the search settled on.
    pub guess: Size,
    /// Total removal cost the plan budgeted (realized cost can be lower).
    pub planned_cost: Cost,
    /// Number of large jobs at the final guess.
    pub l_t: usize,
}

/// Plan cost (total removal cost) at makespan guess `a`, without building
/// the assignment; `None` when the guess is infeasible (`L_T > m`).
pub fn planned_cost(inst: &Instance, a: Size) -> Option<Cost> {
    build_plans(inst, a, &NoopRecorder).map(|(plans, l_t)| select_cost(&plans, l_t))
}

/// Run the §3.2 algorithm: minimize makespan subject to a total relocation
/// cost budget `b`.
///
/// ```
/// use lrb_core::model::{Instance, Job};
///
/// // Two equal jobs piled up; moving the cheap one suffices.
/// let jobs = vec![Job::with_cost(5, 10), Job::with_cost(5, 1)];
/// let inst = Instance::new(jobs, vec![0, 0], 2).unwrap();
/// let run = lrb_core::cost_partition::rebalance(&inst, 1).unwrap();
/// assert_eq!(run.outcome.makespan(), 5);
/// assert!(run.outcome.cost() <= 1);
/// ```
pub fn rebalance(inst: &Instance, b: Cost) -> Result<CostPartitionRun> {
    rebalance_recorded(inst, b, &NoopRecorder)
}

/// [`rebalance`] with instrumentation: counts binary-search guesses
/// (`cost_partition.guesses`), times the guess search
/// (`cost_partition.search`) and the final build (`cost_partition.build`),
/// and threads the recorder into the per-processor knapsacks
/// (`knapsack.bb_nodes`, `knapsack.branch_and_bound`).
pub fn rebalance_recorded<R: Recorder>(
    inst: &Instance,
    b: Cost,
    rec: &R,
) -> Result<CostPartitionRun> {
    rebalance_impl(
        inst,
        b,
        rec,
        &WorkBudget::unlimited(),
        &mut PartitionScratch::default(),
    )
}

/// [`rebalance`] against a reusable [`Scratch`]: identical output, with the
/// selection/reassignment buffers recycled across calls. The per-guess
/// knapsack plans still allocate — they dominate the work here anyway.
pub fn rebalance_scratch(
    inst: &Instance,
    b: Cost,
    scratch: &mut Scratch,
) -> Result<CostPartitionRun> {
    rebalance_scratch_recorded(inst, b, &NoopRecorder, scratch)
}

/// [`rebalance_scratch`] with instrumentation threaded through.
pub fn rebalance_scratch_recorded<R: Recorder>(
    inst: &Instance,
    b: Cost,
    rec: &R,
    scratch: &mut Scratch,
) -> Result<CostPartitionRun> {
    rebalance_impl(
        inst,
        b,
        rec,
        &WorkBudget::unlimited(),
        &mut scratch.partition,
    )
}

/// Run cost-PARTITION under a [`WorkBudget`]: `n` ticks are charged per
/// binary-search guess (each guess runs two knapsacks per processor) plus
/// `n` for the final build, so the search cancels with [`Error::Cancelled`]
/// once the budget is exhausted.
pub fn rebalance_budgeted(inst: &Instance, b: Cost, work: &WorkBudget) -> Result<CostPartitionRun> {
    rebalance_impl(
        inst,
        b,
        &NoopRecorder,
        work,
        &mut PartitionScratch::default(),
    )
}

fn rebalance_impl<R: Recorder>(
    inst: &Instance,
    b: Cost,
    rec: &R,
    work: &WorkBudget,
    s: &mut PartitionScratch,
) -> Result<CostPartitionRun> {
    if inst.num_jobs() == 0 {
        return Ok(CostPartitionRun {
            outcome: RebalanceOutcome::unchanged(inst),
            guess: 0,
            planned_cost: 0,
            l_t: 0,
        });
    }
    // Integer binary search for the smallest guess whose plan fits the
    // budget. The initial makespan always fits (cost 0), so `hi` is valid.
    let search_timer = rec.time(names::COST_PARTITION_SEARCH);
    let lo0 = inst.avg_load_ceil().min(inst.initial_makespan());
    let hi0 = inst.initial_makespan();
    let (mut lo, mut hi) = (lo0, hi0);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        rec.incr(names::COST_PARTITION_GUESSES, 1);
        work.charge("cost_partition.guess", inst.num_jobs() as u64)?;
        let planned = build_plans(inst, mid, rec).map(|(plans, l_t)| select_cost(&plans, l_t));
        match planned {
            Some(cost) if cost <= b => hi = mid,
            _ => lo = mid + 1,
        }
    }
    drop(search_timer);
    work.charge(names::COST_PARTITION_BUILD, inst.num_jobs() as u64)?;
    let _t = rec.time(names::COST_PARTITION_BUILD);
    run_at_impl(inst, lo, rec, s).map(|mut run| {
        // No-regression clamp (mirrors M-PARTITION).
        run.outcome = run
            .outcome
            .clone()
            .better(RebalanceOutcome::unchanged(inst));
        run
    })
}

/// Run the algorithm at a fixed makespan guess `a`.
///
/// # Errors
///
/// [`Error::InfeasibleGuess`] when there are more large jobs than
/// processors.
pub fn run_at(inst: &Instance, a: Size) -> Result<CostPartitionRun> {
    run_at_recorded(inst, a, &NoopRecorder)
}

/// [`run_at`] with instrumentation threaded into the per-processor
/// knapsacks.
pub fn run_at_recorded<R: Recorder>(inst: &Instance, a: Size, rec: &R) -> Result<CostPartitionRun> {
    run_at_impl(inst, a, rec, &mut PartitionScratch::default())
}

fn run_at_impl<R: Recorder>(
    inst: &Instance,
    a: Size,
    rec: &R,
    s: &mut PartitionScratch,
) -> Result<CostPartitionRun> {
    let Some((plans, l_t)) = build_plans(inst, a, rec) else {
        return Err(Error::InfeasibleGuess {
            guess: a,
            reason: "more large jobs than processors",
        });
    };
    let m = inst.num_procs();
    s.reset(m);

    // Select the L_T processors with the smallest c = a_cost − b_cost,
    // preferring processors with large jobs on ties (paper's rule).
    s.cs.extend((0..m).map(|p| {
        (
            plans[p].a_cost as i64 - plans[p].b_cost as i64,
            !plans[p].has_large,
            p,
        )
    }));
    s.cs.sort_unstable();
    for &(_, _, p) in s.cs.iter().take(l_t) {
        s.is_selected[p] = true;
    }

    let mut assignment = inst.initial().clone();
    s.loads.clear();
    s.loads.extend_from_slice(inst.initial_loads());
    let mut planned_cost = 0u64;

    for (p, plan) in plans.iter().enumerate() {
        let removed = if s.is_selected[p] {
            planned_cost += plan.a_cost;
            s.keeps_large[p] = plan.has_large;
            &plan.a_removed
        } else {
            planned_cost += plan.b_cost;
            &plan.b_removed
        };
        for &j in removed {
            s.loads[p] -= inst.size(j);
            if inst.size(j).saturating_mul(2) > a {
                s.homeless_large.push(j);
            } else {
                s.removed_small.push(j);
            }
        }
    }

    // Place homeless large jobs on distinct selected large-free processors.
    s.free_procs
        .extend((0..m).filter(|&p| s.is_selected[p] && !s.keeps_large[p]));
    debug_assert_eq!(s.free_procs.len(), s.homeless_large.len());
    let loads = &s.loads;
    s.free_procs.sort_by_key(|&p| (loads[p], p));
    s.homeless_large.sort_by_key(|&j| Reverse(inst.size(j)));
    for (&j, &p) in s.homeless_large.iter().zip(&s.free_procs) {
        assignment[j] = p;
        s.loads[p] += inst.size(j);
    }

    // Greedy min-load reassignment of removed smalls, largest first.
    s.removed_small.sort_by_key(|&j| Reverse(inst.size(j)));
    let mut heap_buf = std::mem::take(&mut s.min_heap);
    heap_buf.clear();
    heap_buf.extend(s.loads.iter().enumerate().map(|(p, &l)| Reverse((l, p))));
    let mut heap = BinaryHeap::from(heap_buf);
    for &j in &s.removed_small {
        let Reverse((load, p)) = heap.pop().ok_or(Error::NoProcessors)?;
        assignment[j] = p;
        heap.push(Reverse((load.saturating_add(inst.size(j)), p)));
    }
    s.min_heap = heap.into_vec();

    let outcome = RebalanceOutcome::from_assignment(inst, assignment)?;
    debug_assert!(outcome.cost() <= planned_cost);
    Ok(CostPartitionRun {
        outcome,
        guess: a,
        planned_cost,
        l_t,
    })
}

/// Compute per-processor plans at guess `a`; `None` if `L_T > m`.
fn build_plans<R: Recorder>(inst: &Instance, a: Size, rec: &R) -> Option<(Vec<ProcPlan>, usize)> {
    let m = inst.num_procs();
    let per_proc = inst.jobs_by_proc();
    let l_t = inst.jobs().iter().filter(|j| 2 * j.size > a).count();
    if l_t > m {
        return None;
    }

    let mut plans = Vec::with_capacity(m);
    for jobs in &per_proc {
        let (larges, smalls): (Vec<JobId>, Vec<JobId>) = jobs
            .iter()
            .partition(|&&j| inst.size(j).saturating_mul(2) > a);

        // Keep the costliest large (cheapest to shed the rest).
        let kept_large = larges.iter().copied().max_by_key(|&j| (inst.cost(j), j));

        let items: Vec<Item> = smalls
            .iter()
            .map(|&j| Item {
                size: inst.size(j),
                cost: inst.cost(j),
            })
            .collect();
        let small_cost_total: Cost = items.iter().map(|it| it.cost).sum();

        let removed_from = |kept: &[usize]| -> Vec<JobId> {
            let mut kept_iter = kept.iter().peekable();
            let mut out = Vec::new();
            for (idx, &j) in smalls.iter().enumerate() {
                if kept_iter.peek() == Some(&&idx) {
                    kept_iter.next();
                } else {
                    out.push(j);
                }
            }
            out
        };

        // a-plan: smalls within A/2, keep costliest large.
        let keep_half = max_cost_keep_bounded_recorded(&items, a / 2, DEFAULT_NODE_BUDGET, rec);
        let mut a_removed = removed_from(&keep_half.kept);
        let mut a_cost = small_cost_total.saturating_sub(keep_half.kept_cost);
        for &j in &larges {
            if Some(j) != kept_large {
                a_removed.push(j);
                a_cost += inst.cost(j);
            }
        }

        // b-plan: smalls within A, shed all larges.
        let keep_full = max_cost_keep_bounded_recorded(&items, a, DEFAULT_NODE_BUDGET, rec);
        let mut b_removed = removed_from(&keep_full.kept);
        let mut b_cost = small_cost_total.saturating_sub(keep_full.kept_cost);
        for &j in &larges {
            b_removed.push(j);
            b_cost += inst.cost(j);
        }

        plans.push(ProcPlan {
            a_cost,
            a_removed,
            b_cost,
            b_removed,
            has_large: kept_large.is_some(),
        });
    }
    Some((plans, l_t))
}

/// Total planned cost for the optimal selection at the given plans.
fn select_cost(plans: &[ProcPlan], l_t: usize) -> Cost {
    let mut base: u64 = plans.iter().map(|p| p.b_cost).sum();
    let mut cs: Vec<(i64, bool)> = plans
        .iter()
        .map(|p| (p.a_cost as i64 - p.b_cost as i64, !p.has_large))
        .collect();
    cs.sort_unstable();
    let extra: i64 = cs.iter().take(l_t).map(|&(c, _)| c).sum();
    base = base.saturating_add_signed(extra);
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Job;

    fn inst_with_costs(jobs: &[(u64, u64)], initial: Vec<usize>, m: usize) -> Instance {
        let jobs = jobs.iter().map(|&(s, c)| Job::with_cost(s, c)).collect();
        Instance::new(jobs, initial, m).unwrap()
    }

    #[test]
    fn unit_costs_match_move_semantics() {
        // With unit costs, budget B behaves like a move budget.
        let inst = Instance::from_sizes(&[4, 3, 3, 2], vec![0, 0, 0, 0], 2).unwrap();
        let run = rebalance(&inst, 2).unwrap();
        assert!(run.outcome.cost() <= 2);
        assert_eq!(run.outcome.makespan(), 6);
    }

    #[test]
    fn zero_budget_means_no_moves() {
        let inst = inst_with_costs(&[(5, 3), (5, 3)], vec![0, 0], 2);
        let run = rebalance(&inst, 0).unwrap();
        assert_eq!(run.outcome.moves(), 0);
        assert_eq!(run.outcome.makespan(), 10);
    }

    #[test]
    fn prefers_moving_cheap_jobs() {
        // Two equal-size jobs piled up; one costs 10, the other 1. With
        // budget 1 only the cheap one can move.
        let inst = inst_with_costs(&[(5, 10), (5, 1)], vec![0, 0], 2);
        let run = rebalance(&inst, 1).unwrap();
        assert_eq!(run.outcome.makespan(), 5);
        assert_eq!(run.outcome.moved(), &[1]);
        assert_eq!(run.outcome.cost(), 1);
    }

    #[test]
    fn budget_is_never_violated() {
        let inst = inst_with_costs(
            &[(9, 4), (7, 2), (6, 5), (5, 1), (4, 3), (3, 2)],
            vec![0, 0, 0, 1, 1, 2],
            3,
        );
        for b in 0..=20 {
            let run = rebalance(&inst, b).unwrap();
            assert!(
                run.outcome.cost() <= b,
                "budget {b}, cost {}",
                run.outcome.cost()
            );
        }
    }

    #[test]
    fn makespan_never_worse_than_initial() {
        let inst = inst_with_costs(&[(5, 2), (4, 2), (3, 2), (6, 2)], vec![0, 1, 0, 1], 2);
        for b in 0..=8 {
            let run = rebalance(&inst, b).unwrap();
            assert!(run.outcome.makespan() <= inst.initial_makespan(), "b={b}");
        }
    }

    #[test]
    fn larger_budget_never_hurts() {
        let inst = inst_with_costs(
            &[(8, 3), (6, 1), (5, 2), (4, 4), (2, 1)],
            vec![0, 0, 0, 0, 1],
            3,
        );
        let mut prev = u64::MAX;
        for b in 0..=11 {
            let run = rebalance(&inst, b).unwrap();
            assert!(run.outcome.makespan() <= prev, "b={b}");
            prev = run.outcome.makespan();
        }
    }

    #[test]
    fn keeps_costliest_large_job() {
        // Two large jobs on proc 0 (sizes 10); relocation costs 1 and 9.
        // Shedding the cheap one is optimal.
        let inst = inst_with_costs(&[(10, 1), (10, 9)], vec![0, 0], 2);
        let run = rebalance(&inst, 1).unwrap();
        assert_eq!(run.outcome.makespan(), 10);
        assert_eq!(run.outcome.moved(), &[0]);
    }

    #[test]
    fn run_at_reports_infeasible() {
        let inst = Instance::from_sizes(&[10, 10, 10], vec![0, 0, 1], 2).unwrap();
        assert!(matches!(
            run_at(&inst, 10),
            Err(Error::InfeasibleGuess { .. })
        ));
        assert_eq!(planned_cost(&inst, 10), None);
    }

    #[test]
    fn planned_cost_matches_run_at() {
        let inst = inst_with_costs(
            &[(9, 4), (7, 2), (6, 5), (5, 1), (4, 3), (3, 2)],
            vec![0, 0, 0, 1, 1, 2],
            3,
        );
        for a in [8u64, 10, 12, 15, 20, 34] {
            match run_at(&inst, a) {
                Ok(run) => assert_eq!(planned_cost(&inst, a), Some(run.planned_cost), "a={a}"),
                Err(_) => assert_eq!(planned_cost(&inst, a), None, "a={a}"),
            }
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_sizes(&[], vec![], 2).unwrap();
        let run = rebalance(&inst, 5).unwrap();
        assert_eq!(run.outcome.makespan(), 0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_runs() {
        let a = inst_with_costs(
            &[(9, 4), (7, 2), (6, 5), (5, 1), (4, 3), (3, 2)],
            vec![0, 0, 0, 1, 1, 2],
            3,
        );
        let b = inst_with_costs(&[(10, 1), (10, 9)], vec![0, 0], 2);
        let mut scratch = Scratch::new();
        for inst in [&a, &b, &a] {
            for budget in 0..=8 {
                let fresh = rebalance(inst, budget).unwrap();
                let reused = rebalance_scratch(inst, budget, &mut scratch).unwrap();
                assert_eq!(fresh.guess, reused.guess, "b={budget}");
                assert_eq!(fresh.planned_cost, reused.planned_cost, "b={budget}");
                assert_eq!(
                    fresh.outcome.assignment(),
                    reused.outcome.assignment(),
                    "b={budget}"
                );
            }
        }
    }

    #[test]
    fn budgeted_run_cancels_and_matches_unbudgeted() {
        let inst = inst_with_costs(
            &[(9, 4), (7, 2), (6, 5), (5, 1), (4, 3), (3, 2)],
            vec![0, 0, 0, 1, 1, 2],
            3,
        );
        let err = rebalance_budgeted(&inst, 6, &WorkBudget::new(1)).unwrap_err();
        assert!(matches!(err, Error::Cancelled { .. }));

        let budgeted = rebalance_budgeted(&inst, 6, &WorkBudget::unlimited()).unwrap();
        let plain = rebalance(&inst, 6).unwrap();
        assert_eq!(budgeted.outcome.assignment(), plain.outcome.assignment());
    }
}
