//! The **Constrained Load Rebalancing** variant (§5, Corollary 1): each
//! job may only be (re)assigned to a specified subset of processors.
//!
//! The paper proves no polynomial algorithm approximates this variant
//! below 3/2 (unless P = NP) and notes the best known upper bound is the
//! Shmoys–Tardos 2-approximation — whether 1.5 is achievable is left open.
//! This module supplies the model plus a constrained `GREEDY` heuristic;
//! the 2-approximation lives in `lrb-lp::constrained` (it needs the LP) and
//! the exact oracle in `lrb-exact::constrained`.

use crate::error::{Error, Result};
use crate::model::{Instance, JobId, ProcId, Size};
use crate::outcome::RebalanceOutcome;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A load-rebalancing instance where each job carries an eligibility list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstrainedInstance {
    base: Instance,
    /// `allowed[j]` — sorted processor ids job `j` may run on; always
    /// contains the job's initial processor.
    allowed: Vec<Vec<ProcId>>,
}

impl ConstrainedInstance {
    /// Build and validate: every list must be non-empty, in range, and
    /// contain the job's initial processor (it is already running there).
    pub fn new(base: Instance, mut allowed: Vec<Vec<ProcId>>) -> Result<Self> {
        if allowed.len() != base.num_jobs() {
            return Err(Error::LengthMismatch {
                jobs: base.num_jobs(),
                assignment: allowed.len(),
            });
        }
        for (j, list) in allowed.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &p in list.iter() {
                if p >= base.num_procs() {
                    return Err(Error::ProcOutOfRange {
                        job: j,
                        proc: p,
                        num_procs: base.num_procs(),
                    });
                }
            }
            if list.binary_search(&base.initial_proc(j)).is_err() {
                // The job is already running on its home processor; an
                // eligibility list excluding it is contradictory.
                return Err(Error::ProcOutOfRange {
                    job: j,
                    proc: base.initial_proc(j),
                    num_procs: base.num_procs(),
                });
            }
        }
        Ok(ConstrainedInstance { base, allowed })
    }

    /// The unconstrained view of the instance.
    pub fn base(&self) -> &Instance {
        &self.base
    }

    /// Eligible processors of job `j` (sorted).
    pub fn allowed(&self, j: JobId) -> &[ProcId] {
        &self.allowed[j]
    }

    /// May job `j` run on processor `p`?
    pub fn is_allowed(&self, j: JobId, p: ProcId) -> bool {
        self.allowed[j].binary_search(&p).is_ok()
    }

    /// Does an assignment respect every eligibility list?
    pub fn respects(&self, assignment: &[ProcId]) -> bool {
        assignment.len() == self.base.num_jobs()
            && assignment
                .iter()
                .enumerate()
                .all(|(j, &p)| self.is_allowed(j, p))
    }

    /// An unconstrained instance wrapped with all-processors eligibility.
    pub fn unconstrained(base: Instance) -> Self {
        let all: Vec<ProcId> = (0..base.num_procs()).collect();
        let allowed = vec![all; base.num_jobs()];
        ConstrainedInstance { base, allowed }
    }
}

/// Constrained `GREEDY`: the §2 algorithm with the reinsertion step picking
/// the least-loaded *eligible* processor.
///
/// This is a heuristic (the unconstrained ratio proof does not survive
/// eligibility lists — consistent with the Corollary 1 lower bound), but
/// it keeps GREEDY's shape: removal of the largest job from the max-loaded
/// processor `k` times, then eligible min-load reinsertion. Jobs always
/// may return home, so the algorithm is total.
pub fn greedy(cinst: &ConstrainedInstance, k: usize) -> Result<RebalanceOutcome> {
    let inst = cinst.base();
    let mut assignment = inst.initial().clone();
    let mut loads = inst.initial_loads().to_vec();

    // Removal phase (identical to unconstrained GREEDY).
    let mut per_proc = inst.jobs_by_proc();
    for jobs in &mut per_proc {
        jobs.sort_by_key(|&j| inst.size(j));
    }
    let mut heap: BinaryHeap<(Size, ProcId)> =
        loads.iter().enumerate().map(|(p, &l)| (l, p)).collect();
    let mut removed = Vec::new();
    for _ in 0..k {
        let p = loop {
            match heap.pop() {
                Some((l, p)) if loads[p] == l => break Some(p),
                Some(_) => continue,
                None => break None,
            }
        };
        let Some(p) = p else { break };
        if loads[p] == 0 {
            break;
        }
        // lint: allow(no-panic-core, loads[p] > 0 is checked above, so the stack is non-empty)
        let j = per_proc[p].pop().expect("nonzero load implies a job");
        loads[p] -= inst.size(j);
        removed.push(j);
        heap.push((loads[p], p));
    }

    // Eligible min-load reinsertion, largest job first.
    removed.sort_by_key(|&j| Reverse(inst.size(j)));
    for j in removed {
        let p = cinst
            .allowed(j)
            .iter()
            .copied()
            .min_by_key(|&p| (loads[p], p))
            // lint: allow(no-panic-core, ConstrainedInstance::new rejects empty eligibility lists)
            .expect("eligibility lists are non-empty");
        assignment[j] = p;
        loads[p] += inst.size(j);
    }

    let out = RebalanceOutcome::from_assignment(inst, assignment)?;
    debug_assert!(cinst.respects(out.assignment()));
    Ok(out.better(RebalanceOutcome::unchanged(inst)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cinst() -> ConstrainedInstance {
        // 4 jobs piled on proc 0 of 3; job 0 may only use {0,1}, job 1 only
        // {0}, others anywhere.
        let base = Instance::from_sizes(&[8, 6, 4, 2], vec![0, 0, 0, 0], 3).unwrap();
        ConstrainedInstance::new(
            base,
            vec![vec![0, 1], vec![0], vec![0, 1, 2], vec![0, 1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_lists() {
        let base = Instance::from_sizes(&[5], vec![0], 2).unwrap();
        // Missing the home processor.
        assert!(ConstrainedInstance::new(base.clone(), vec![vec![1]]).is_err());
        // Out of range.
        assert!(ConstrainedInstance::new(base.clone(), vec![vec![0, 7]]).is_err());
        // Wrong length.
        assert!(ConstrainedInstance::new(base.clone(), vec![]).is_err());
        // Fine.
        assert!(ConstrainedInstance::new(base, vec![vec![0, 1]]).is_ok());
    }

    #[test]
    fn is_allowed_and_respects() {
        let c = cinst();
        assert!(c.is_allowed(0, 1));
        assert!(!c.is_allowed(0, 2));
        assert!(!c.is_allowed(1, 1));
        assert!(c.respects(&[0, 0, 2, 1]));
        assert!(!c.respects(&[2, 0, 2, 1]));
        assert!(!c.respects(&[0, 0, 2]));
    }

    #[test]
    fn greedy_respects_eligibility() {
        let c = cinst();
        for k in 0..=4 {
            let out = greedy(&c, k).unwrap();
            assert!(
                c.respects(out.assignment()),
                "k={k}: {:?}",
                out.assignment()
            );
            assert!(out.moves() <= k);
        }
    }

    #[test]
    fn greedy_uses_the_only_eligible_targets() {
        let c = cinst();
        // k = 4: job 1 (size 6) must stay on proc 0; jobs 0,2,3 spread.
        let out = greedy(&c, 4).unwrap();
        assert_eq!(out.assignment()[1], 0);
        // The load on proc 0 can't drop below 6.
        let loads = c.base().loads_of(out.assignment()).unwrap();
        assert!(loads[0] >= 6);
    }

    #[test]
    fn unconstrained_wrapper_matches_plain_greedy() {
        let base = Instance::from_sizes(&[9, 5, 3, 2], vec![0, 0, 1, 1], 2).unwrap();
        let c = ConstrainedInstance::unconstrained(base.clone());
        for k in 0..=4 {
            let a = greedy(&c, k).unwrap();
            assert!(c.respects(a.assignment()));
            // Same guarantee surface: never worse than initial.
            assert!(a.makespan() <= base.initial_makespan());
        }
    }
}
