//! `M-PARTITION` (§3.1): run [`crate::partition`] without knowing `OPT`.
//!
//! PARTITION never looks at the move budget `k` directly; it guarantees it
//! uses no more moves than an optimal rebalancer *for its makespan guess*.
//! M-PARTITION therefore searches the discrete threshold set of Lemma 5 for
//! the smallest guess at which PARTITION plans at most `k` moves. Because
//! the optimal solution itself uses at most `k` moves, the search stops at a
//! threshold no larger than `OPT` (Lemma 6), which yields the 1.5 ratio
//! (Theorem 3).
//!
//! Two search strategies are provided (experiment T14 is their ablation):
//!
//! * [`ThresholdSearch::Scan`] — the paper's increasing scan from the
//!   average-load guess; always finds the *first* feasible threshold.
//! * [`ThresholdSearch::Binary`] — binary search over the same candidate
//!   list, exploiting that the planned move count is non-increasing in the
//!   guess. This is the default; its agreement with the scan is enforced by
//!   property tests (if a non-monotone instance existed, the two variants
//!   would disagree and the tests would catch it).
//!
//! Either way, the produced assignment is *always* valid and within budget;
//! the search strategy affects only which threshold is chosen.

use lrb_obs::{names, NoopRecorder, Recorder};

use crate::deadline::WorkBudget;
use crate::error::{Error, Result};
use crate::model::{Instance, Size};
use crate::outcome::RebalanceOutcome;
use crate::partition::{self, PartitionStats};
use crate::scratch::Scratch;

/// How M-PARTITION locates the smallest feasible threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThresholdSearch {
    /// Increasing scan from the average load, re-evaluating every processor
    /// at each probed threshold (`O(m log n)` per probe).
    Scan,
    /// The paper's incremental increasing scan: `O(log n)` per threshold
    /// *event* via a Fenwick multiset of `c_i` values — the data structure
    /// behind the `O(n log n)` bound of Theorem 3. Finds the same threshold
    /// as `Scan`.
    Incremental,
    /// Binary search over the candidate thresholds (default).
    #[default]
    Binary,
}

/// Result of an M-PARTITION run.
#[derive(Debug, Clone)]
pub struct MPartitionRun {
    /// The rebalanced assignment (clamped to the initial assignment if that
    /// was already at least as good).
    pub outcome: RebalanceOutcome,
    /// The threshold the search settled on (≤ OPT by Lemma 6).
    pub threshold: Size,
    /// Stats of the PARTITION run at that threshold.
    pub stats: PartitionStats,
    /// How many thresholds were probed (for the T14 ablation).
    pub probes: usize,
}

/// Run M-PARTITION with at most `k` moves using the default binary search.
///
/// ```
/// use lrb_core::model::Instance;
///
/// let inst = Instance::from_sizes(&[4, 3, 3, 2], vec![0, 0, 0, 0], 2).unwrap();
/// let run = lrb_core::mpartition::rebalance(&inst, 2).unwrap();
/// assert!(run.outcome.moves() <= 2);
/// assert_eq!(run.outcome.makespan(), 6); // OPT here; the guarantee is 1.5*OPT
/// assert!(run.threshold <= 6);           // Lemma 6
/// ```
pub fn rebalance(inst: &Instance, k: usize) -> Result<MPartitionRun> {
    rebalance_with(inst, k, ThresholdSearch::default())
}

/// Run M-PARTITION with an explicit search strategy.
pub fn rebalance_with(inst: &Instance, k: usize, search: ThresholdSearch) -> Result<MPartitionRun> {
    rebalance_with_recorded(inst, k, search, &NoopRecorder)
}

/// [`rebalance_with`] with instrumentation: times the threshold search
/// (`mpartition.search`) and the final PARTITION run
/// (`mpartition.partition`), and counts — for every search strategy — how
/// many candidate thresholds were examined versus skipped
/// (`mpartition.candidates_examined` / `mpartition.candidates_skipped`).
pub fn rebalance_with_recorded<R: Recorder>(
    inst: &Instance,
    k: usize,
    search: ThresholdSearch,
    rec: &R,
) -> Result<MPartitionRun> {
    let mut scratch = Scratch::new();
    rebalance_impl(inst, k, search, rec, &WorkBudget::unlimited(), &mut scratch)
}

/// Run M-PARTITION against a reusable [`Scratch`] (default binary search).
///
/// Identical output to [`rebalance`], but profiles, the candidate ladder,
/// and every PARTITION working buffer live in `scratch` and are recycled
/// across calls — including the multiset-keyed threshold-ladder cache, so a
/// batch of same-job-multiset instances sorts the global size array once.
pub fn rebalance_scratch(
    inst: &Instance,
    k: usize,
    scratch: &mut Scratch,
) -> Result<MPartitionRun> {
    rebalance_scratch_recorded(inst, k, ThresholdSearch::default(), &NoopRecorder, scratch)
}

/// [`rebalance_scratch`] with an explicit search strategy and recorder.
pub fn rebalance_scratch_recorded<R: Recorder>(
    inst: &Instance,
    k: usize,
    search: ThresholdSearch,
    rec: &R,
    scratch: &mut Scratch,
) -> Result<MPartitionRun> {
    rebalance_impl(inst, k, search, rec, &WorkBudget::unlimited(), scratch)
}

/// Run M-PARTITION under a [`WorkBudget`]: ticks are charged for profile
/// construction, each probed threshold, and the final PARTITION run, so the
/// search cancels with [`Error::Cancelled`] once the budget is exhausted.
pub fn rebalance_budgeted(
    inst: &Instance,
    k: usize,
    search: ThresholdSearch,
    work: &WorkBudget,
) -> Result<MPartitionRun> {
    let mut scratch = Scratch::new();
    rebalance_impl(inst, k, search, &NoopRecorder, work, &mut scratch)
}

fn rebalance_impl<R: Recorder>(
    inst: &Instance,
    k: usize,
    search: ThresholdSearch,
    rec: &R,
    work: &WorkBudget,
    scratch: &mut Scratch,
) -> Result<MPartitionRun> {
    if inst.num_jobs() == 0 {
        return Ok(MPartitionRun {
            outcome: RebalanceOutcome::unchanged(inst),
            threshold: 0,
            stats: PartitionStats {
                guess: 0,
                l_t: 0,
                m_l: 0,
                l_e: 0,
                selected: Vec::new(),
                planned_moves: 0,
            },
            probes: 0,
        });
    }

    work.charge("mpartition.profiles", inst.num_jobs() as u64)?;
    let Scratch {
        profiles,
        candidates,
        partition: pscratch,
        ladder,
        ..
    } = scratch;
    {
        // Timed on every solve (cache hits included) so the phase's call
        // count — and hence a trace's determinism hash — is independent of
        // which worker's warm ladder served the item.
        let _ladder_build = rec.time(names::MPARTITION_LADDER_BUILD);
        profiles.rebuild(inst, ladder);
    }
    profiles.candidates_into(candidates);
    // Start at the paper's average-load guess — but because the search only
    // evaluates candidate thresholds and behavior is constant *between*
    // candidates, the region containing OPT may begin at the last candidate
    // strictly below the average (Lemma 6 talks about the largest threshold
    // not exceeding OPT). Backing up one candidate covers that region.
    let start = candidates
        .partition_point(|&t| t < inst.avg_load_ceil())
        .saturating_sub(1);
    let cands = &candidates[start..];
    debug_assert!(
        !cands.is_empty(),
        "the doubled max-load candidate always qualifies"
    );

    let mut probes = 0usize;
    let mut feasible = |t: Size, probes: &mut usize| -> Result<bool> {
        *probes += 1;
        work.charge(names::MPARTITION_SEARCH, 1)?;
        Ok(matches!(
            partition::planned_moves_with(profiles, t, &mut pscratch.cs),
            Some(moves) if moves <= k
        ))
    };

    let search_timer = rec.time(names::MPARTITION_SEARCH);
    let idx = match search {
        ThresholdSearch::Scan => {
            let mut idx = None;
            for (i, &t) in cands.iter().enumerate() {
                if feasible(t, &mut probes)? {
                    idx = Some(i);
                    break;
                }
            }
            idx
        }
        ThresholdSearch::Incremental => {
            let mut scan =
                crate::incremental::IncrementalScan::new(inst, profiles, inst.avg_load_ceil())
                    .ok_or(Error::InfeasibleGuess {
                        guess: 0,
                        reason: "no candidate thresholds",
                    })?;
            match scan.first_feasible(k) {
                Some((t, visited)) => {
                    probes += visited;
                    work.charge(names::MPARTITION_SEARCH, visited as u64)?;
                    Some(cands.partition_point(|&c| c < t))
                }
                None => None,
            }
        }
        ThresholdSearch::Binary => {
            // partition_point over "still infeasible".
            let (mut lo, mut hi) = (0usize, cands.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if feasible(cands[mid], &mut probes)? {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            (lo < cands.len()).then_some(lo)
        }
    };
    drop(search_timer);

    // Every probe evaluated one candidate threshold; the rest of the
    // candidate list was never touched by this search strategy.
    rec.incr(names::MPARTITION_CANDIDATES_TOTAL, cands.len() as u64);
    rec.incr(names::MPARTITION_CANDIDATES_EXAMINED, probes as u64);
    rec.incr(
        names::MPARTITION_CANDIDATES_SKIPPED,
        cands.len().saturating_sub(probes) as u64,
    );

    let Some(idx) = idx else {
        // Cannot happen: the largest candidate always plans zero moves.
        return Err(Error::InfeasibleGuess {
            guess: cands.last().copied().unwrap_or(0),
            reason: "no feasible threshold found",
        });
    };

    let t = cands[idx];
    work.charge(names::MPARTITION_PARTITION, inst.num_jobs() as u64)?;
    let run = {
        let _t = rec.time(names::MPARTITION_PARTITION);
        partition::run_impl(inst, profiles, t, rec, pscratch)?
    };
    debug_assert!(run.stats.planned_moves <= k);

    // No-regression clamp: if the initial assignment was already at least as
    // good, keep it (PARTITION never promises to beat the status quo; see
    // the Theorem 2 tightness example where it must not move anything).
    let outcome = run.outcome.better(RebalanceOutcome::unchanged(inst));
    Ok(MPartitionRun {
        outcome,
        threshold: t,
        stats: run.stats,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::within_ratio;

    #[test]
    fn all_searches_agree_on_threshold() {
        let inst = Instance::from_sizes(&[9, 7, 5, 4, 3, 2, 1, 8], vec![0, 0, 0, 0, 1, 1, 2, 2], 3)
            .unwrap();
        for k in 0..=8 {
            let scan = rebalance_with(&inst, k, ThresholdSearch::Scan).unwrap();
            let inc = rebalance_with(&inst, k, ThresholdSearch::Incremental).unwrap();
            let bin = rebalance_with(&inst, k, ThresholdSearch::Binary).unwrap();
            assert_eq!(scan.threshold, bin.threshold, "k={k}");
            assert_eq!(scan.threshold, inc.threshold, "k={k}");
            assert_eq!(scan.outcome.makespan(), bin.outcome.makespan(), "k={k}");
            assert_eq!(scan.outcome.makespan(), inc.outcome.makespan(), "k={k}");
        }
    }

    #[test]
    fn binary_uses_fewer_probes_than_scan_on_tight_budgets() {
        // With k = 0 the scan walks most of the candidate list; the binary
        // search takes O(log) probes.
        let sizes: Vec<u64> = (1..=40).collect();
        let initial = vec![0usize; 40];
        let inst = Instance::from_sizes(&sizes, initial, 4).unwrap();
        let scan = rebalance_with(&inst, 0, ThresholdSearch::Scan).unwrap();
        let bin = rebalance_with(&inst, 0, ThresholdSearch::Binary).unwrap();
        assert!(
            bin.probes < scan.probes,
            "binary {} vs scan {}",
            bin.probes,
            scan.probes
        );
    }

    #[test]
    fn respects_move_budget() {
        let inst = Instance::from_sizes(&[10, 9, 8, 7, 1, 1], vec![0, 0, 0, 0, 1, 2], 3).unwrap();
        for k in 0..=6 {
            let run = rebalance(&inst, k).unwrap();
            assert!(
                run.outcome.moves() <= k,
                "k={k} moves={}",
                run.outcome.moves()
            );
        }
    }

    #[test]
    fn k_zero_changes_nothing() {
        let inst = Instance::from_sizes(&[5, 5, 5], vec![0, 0, 0], 3).unwrap();
        let run = rebalance(&inst, 0).unwrap();
        assert_eq!(run.outcome.moves(), 0);
        assert_eq!(run.outcome.makespan(), inst.initial_makespan());
    }

    #[test]
    fn full_budget_balances_piled_jobs() {
        let inst = Instance::from_sizes(&[6, 6, 6, 6, 6, 6], vec![0, 0, 0, 0, 0, 0], 3).unwrap();
        let run = rebalance(&inst, 6).unwrap();
        // OPT = 12 (two jobs per processor); 1.5 bound allows 18 but the
        // greedy reassignment should land at 12 here.
        assert_eq!(run.outcome.makespan(), 12);
    }

    #[test]
    fn ratio_bound_against_known_opt() {
        // Instances small enough to reason OPT by hand.
        // {4,3,3,2} piled on one of two processors, k=2 -> OPT=6.
        let inst = Instance::from_sizes(&[4, 3, 3, 2], vec![0, 0, 0, 0], 2).unwrap();
        let run = rebalance(&inst, 2).unwrap();
        assert!(within_ratio(run.outcome.makespan(), 6, 3, 2));
        assert!(
            run.threshold <= 6,
            "Lemma 6: final threshold {} <= OPT 6",
            run.threshold
        );
    }

    #[test]
    fn paper_tightness_ratio_is_exactly_1_5() {
        // {1,2} and {1} on two processors, k=1, OPT=2: M-PARTITION makes no
        // moves and stays at makespan 3.
        let inst = Instance::from_sizes(&[1, 2, 1], vec![0, 0, 1], 2).unwrap();
        let run = rebalance(&inst, 1).unwrap();
        assert_eq!(run.outcome.makespan(), 3);
        assert_eq!(run.outcome.moves(), 0);
    }

    #[test]
    fn clamp_never_worse_than_initial() {
        let inst = Instance::from_sizes(&[3, 3, 4, 2], vec![0, 1, 1, 0], 2).unwrap();
        for k in 0..=4 {
            let run = rebalance(&inst, k).unwrap();
            assert!(run.outcome.makespan() <= inst.initial_makespan(), "k={k}");
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_sizes(&[], vec![], 2).unwrap();
        let run = rebalance(&inst, 3).unwrap();
        assert_eq!(run.outcome.makespan(), 0);
    }

    #[test]
    fn budgeted_run_cancels_and_matches_unbudgeted() {
        let inst = Instance::from_sizes(&[10, 9, 8, 7, 1, 1], vec![0, 0, 0, 0, 1, 2], 3).unwrap();
        for search in [
            ThresholdSearch::Scan,
            ThresholdSearch::Incremental,
            ThresholdSearch::Binary,
        ] {
            let err = rebalance_budgeted(&inst, 2, search, &WorkBudget::new(1)).unwrap_err();
            assert!(matches!(err, Error::Cancelled { .. }), "{search:?}");

            let budgeted = rebalance_budgeted(&inst, 2, search, &WorkBudget::unlimited()).unwrap();
            let plain = rebalance_with(&inst, 2, search).unwrap();
            assert_eq!(
                budgeted.outcome.assignment(),
                plain.outcome.assignment(),
                "{search:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_and_caches_ladder() {
        let base = Instance::from_sizes(&[9, 7, 5, 4, 3, 2, 1, 8], vec![0, 0, 0, 0, 1, 1, 2, 2], 3)
            .unwrap();
        // Same job multiset, different placement: must hit the ladder cache.
        let alt = Instance::from_sizes(&[9, 7, 5, 4, 3, 2, 1, 8], vec![2, 1, 0, 2, 1, 0, 0, 1], 3)
            .unwrap();
        // Different multiset (and shape): must invalidate it.
        let other = Instance::from_sizes(&[6, 6, 5], vec![0, 0, 1], 2).unwrap();
        let mut scratch = crate::scratch::Scratch::new();
        for inst in [&base, &alt, &base, &other] {
            for k in 0..=4 {
                let fresh = rebalance(inst, k).unwrap();
                let reused = rebalance_scratch(inst, k, &mut scratch).unwrap();
                assert_eq!(fresh.threshold, reused.threshold, "k={k}");
                assert_eq!(fresh.probes, reused.probes, "k={k}");
                assert_eq!(
                    fresh.outcome.assignment(),
                    reused.outcome.assignment(),
                    "k={k}"
                );
            }
        }
        assert!(scratch.ladder_hits() > 0);
        assert!(scratch.ladder_misses() >= 2);
    }

    #[test]
    fn single_job() {
        let inst = Instance::from_sizes(&[7], vec![0], 3).unwrap();
        let run = rebalance(&inst, 1).unwrap();
        assert_eq!(run.outcome.makespan(), 7);
        assert_eq!(run.outcome.moves(), 0);
    }
}
