//! Error types shared across the crate.

use std::fmt;

/// Errors raised when constructing or manipulating instances and assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The instance declares zero processors.
    NoProcessors,
    /// A job references a processor index `proc` outside `0..num_procs`.
    ProcOutOfRange {
        job: usize,
        proc: usize,
        num_procs: usize,
    },
    /// `jobs` and `assignment` vectors have different lengths.
    LengthMismatch { jobs: usize, assignment: usize },
    /// An assignment given to a validation routine has the wrong length.
    AssignmentLength { expected: usize, got: usize },
    /// A relocation budget was exceeded (moves or cost, reported generically).
    BudgetExceeded { used: u64, budget: u64 },
    /// A makespan guess was infeasible (e.g. more large jobs than processors).
    InfeasibleGuess { guess: u64, reason: &'static str },
    /// A solver hit its work budget / deadline and stopped at a cancellation
    /// point before producing an answer (see [`crate::deadline::WorkBudget`]).
    Cancelled {
        /// The phase that was executing when the budget ran out.
        phase: &'static str,
        /// Work ticks consumed when the cancellation fired.
        consumed: u64,
        /// The work budget that was exhausted.
        limit: u64,
    },
    /// An operation referenced a processor that is marked down / crashed.
    ProcessorDown { proc: usize },
    /// An online event referenced a job key that is not live.
    UnknownJob { key: u64 },
    /// An online arrival reused a job key that is still live.
    DuplicateJob { key: u64 },
    /// A speed vector declares a zero speed for processor `proc`.
    ZeroSpeed { proc: usize },
    /// A speed vector's length does not match the instance's processor count.
    SpeedsLength { expected: usize, got: usize },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoProcessors => write!(f, "instance has no processors"),
            Error::ProcOutOfRange { job, proc, num_procs } => write!(
                f,
                "job {job} assigned to processor {proc}, but instance has only {num_procs} processors"
            ),
            Error::LengthMismatch { jobs, assignment } => write!(
                f,
                "{jobs} jobs but {assignment} assignment entries"
            ),
            Error::AssignmentLength { expected, got } => write!(
                f,
                "assignment has {got} entries, expected {expected}"
            ),
            Error::BudgetExceeded { used, budget } => {
                write!(f, "relocation budget exceeded: used {used}, budget {budget}")
            }
            Error::InfeasibleGuess { guess, reason } => {
                write!(f, "makespan guess {guess} infeasible: {reason}")
            }
            Error::Cancelled {
                phase,
                consumed,
                limit,
            } => {
                write!(
                    f,
                    "solver cancelled in {phase}: consumed {consumed} of {limit} work ticks"
                )
            }
            Error::ProcessorDown { proc } => write!(f, "processor {proc} is down"),
            Error::UnknownJob { key } => write!(f, "no live job with key {key}"),
            Error::DuplicateJob { key } => {
                write!(f, "job key {key} is already live")
            }
            Error::ZeroSpeed { proc } => {
                write!(f, "processor {proc} has zero speed")
            }
            Error::SpeedsLength { expected, got } => {
                write!(f, "speed vector has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = Error::ProcOutOfRange {
            job: 3,
            proc: 9,
            num_procs: 4,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9') && s.contains('4'));

        let e = Error::BudgetExceeded {
            used: 11,
            budget: 10,
        };
        assert!(e.to_string().contains("11"));
    }

    #[test]
    fn cancellation_and_outage_messages() {
        let e = Error::Cancelled {
            phase: "mpartition.search",
            consumed: 120,
            limit: 100,
        };
        let s = e.to_string();
        assert!(s.contains("mpartition.search") && s.contains("120") && s.contains("100"));
        assert_eq!(
            Error::ProcessorDown { proc: 7 }.to_string(),
            "processor 7 is down"
        );
    }

    #[test]
    fn online_job_key_messages() {
        assert_eq!(
            Error::UnknownJob { key: 42 }.to_string(),
            "no live job with key 42"
        );
        assert_eq!(
            Error::DuplicateJob { key: 7 }.to_string(),
            "job key 7 is already live"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::NoProcessors);
    }
}
