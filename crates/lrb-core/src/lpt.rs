//! Graham's Longest-Processing-Time (LPT) list scheduling (Graham 1966,
//! cited as \[5\] in the paper).
//!
//! Used here as the *full rebalance* oracle: ignore the initial placement
//! entirely and schedule from scratch. This is what an unbounded move budget
//! (`k = n`) buys, and is the baseline the crossover experiment (T13)
//! compares bounded rebalancing against. LPT is a `(4/3 − 1/(3m))`-
//! approximation to classical makespan, so it is a good (not perfect) proxy
//! for the fully-rebalanced optimum.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::Result;
use crate::model::{Instance, ProcId, Size};
use crate::outcome::RebalanceOutcome;

/// Schedule `sizes` on `m` processors with LPT; returns the assignment.
///
/// Jobs are sorted by decreasing size and each is placed on the currently
/// least-loaded processor.
pub fn schedule(sizes: &[Size], m: usize) -> Vec<ProcId> {
    assert!(m > 0, "LPT needs at least one processor");
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&j| Reverse(sizes[j]));

    let mut heap: BinaryHeap<Reverse<(Size, ProcId)>> = (0..m).map(|p| Reverse((0, p))).collect();
    let mut assignment = vec![0usize; sizes.len()];
    for j in order {
        // lint: allow(no-panic-core, the heap is seeded with m entries and m > 0 is asserted above)
        let Reverse((load, p)) = heap.pop().expect("m >= 1");
        assignment[j] = p;
        heap.push(Reverse((load.saturating_add(sizes[j]), p)));
    }
    assignment
}

/// Makespan of the LPT schedule for `sizes` on `m` processors.
pub fn makespan(sizes: &[Size], m: usize) -> Size {
    let assignment = schedule(sizes, m);
    let mut loads = vec![0u64; m];
    for (j, &p) in assignment.iter().enumerate() {
        loads[p] += sizes[j];
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Rebalance by scheduling everything from scratch with LPT, disregarding
/// the initial placement (every job that lands elsewhere counts as a move).
///
/// To avoid gratuitous relocations, processors are relabeled afterwards so
/// that the LPT buckets line up with the initial processors as well as a
/// greedy label matching can manage.
pub fn full_rebalance(inst: &Instance) -> Result<RebalanceOutcome> {
    let sizes: Vec<Size> = inst.jobs().iter().map(|j| j.size).collect();
    let raw = schedule(&sizes, inst.num_procs());
    let relabeled = relabel_to_minimize_moves(inst, raw);
    RebalanceOutcome::from_assignment(inst, relabeled)
}

/// Greedily permute processor labels of `assignment` to maximize the number
/// of jobs that keep their initial processor.
///
/// For each (new-label, old-label) pair, count overlapping jobs; repeatedly
/// commit the pair with the largest overlap. This is a 2-approximation to
/// the best label matching, which is ample for a baseline.
fn relabel_to_minimize_moves(inst: &Instance, assignment: Vec<ProcId>) -> Vec<ProcId> {
    let m = inst.num_procs();
    let mut overlap = vec![vec![0usize; m]; m];
    for (j, &newp) in assignment.iter().enumerate() {
        overlap[newp][inst.initial_proc(j)] += 1;
    }
    let mut pairs: Vec<(usize, ProcId, ProcId)> = Vec::with_capacity(m * m);
    for (a, row) in overlap.iter().enumerate() {
        for (b, &c) in row.iter().enumerate() {
            pairs.push((c, a, b));
        }
    }
    pairs.sort_by_key(|&(c, a, b)| (Reverse(c), a, b));

    let mut new_to_old = vec![usize::MAX; m];
    let mut old_taken = vec![false; m];
    for (_, a, b) in pairs {
        if new_to_old[a] == usize::MAX && !old_taken[b] {
            new_to_old[a] = b;
            old_taken[b] = true;
        }
    }
    for (a, slot) in new_to_old.iter_mut().enumerate() {
        if *slot == usize::MAX {
            // Shouldn't happen (pairs covers the full bipartite grid), but
            // fall back to identity rather than panic.
            *slot = a;
        }
    }

    assignment.into_iter().map(|p| new_to_old[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_balances_equal_jobs() {
        let sizes = vec![3, 3, 3, 3];
        assert_eq!(makespan(&sizes, 2), 6);
        assert_eq!(makespan(&sizes, 4), 3);
    }

    #[test]
    fn lpt_classic_example() {
        // Sizes {5,5,4,4,3,3,3}: total 27, m=3. OPT = 9 but LPT lands at 11
        // (5+3+3 / 5+3+3... actually 4+4+3 = 11) — the classic gap, still
        // within the 4/3 − 1/(3m) bound (11 ≤ 9·11/9).
        let sizes = vec![5, 5, 4, 4, 3, 3, 3];
        let ms = makespan(&sizes, 3);
        assert_eq!(ms, 11);
        // Graham bound: LPT ≤ (4/3 − 1/9)·OPT = 11/9 · 9 = 11.
        assert!(ms * 9 <= 9 * 11);
    }

    #[test]
    fn lpt_assignment_is_wellformed() {
        let sizes = vec![9, 7, 5, 3, 1];
        let a = schedule(&sizes, 3);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|&p| p < 3));
    }

    #[test]
    fn full_rebalance_beats_or_ties_initial_makespan_here() {
        let inst = Instance::from_sizes(&[6, 6, 6, 6], vec![0, 0, 0, 0], 2).unwrap();
        let out = full_rebalance(&inst).unwrap();
        assert_eq!(out.makespan(), 12);
    }

    #[test]
    fn relabeling_keeps_already_balanced_instances_in_place() {
        // Initial placement IS an LPT-quality schedule; relabeling should
        // recover it with zero or near-zero moves.
        let inst = Instance::from_sizes(&[5, 5, 4, 4], vec![0, 1, 0, 1], 2).unwrap();
        let out = full_rebalance(&inst).unwrap();
        assert_eq!(out.makespan(), 9);
        assert_eq!(out.moves(), 0, "relabeling should find the identity");
    }

    #[test]
    fn single_proc() {
        assert_eq!(makespan(&[1, 2, 3], 1), 6);
    }

    #[test]
    fn empty_jobs() {
        assert_eq!(makespan(&[], 3), 0);
        let a = schedule(&[], 3);
        assert!(a.is_empty());
    }
}
