//! Cross-file, cross-crate call graph over the parsed [`crate::parser`]
//! facts.
//!
//! Resolution is name-based and deliberately over-approximate: a method
//! call `.solve(x)` draws an edge to *every* non-test method named `solve`
//! in the caller's crate or its (transitively) mentioned workspace crates.
//! The crate-dependency filter — derived from `lrb_*` identifier mentions,
//! so it works for real manifests and virtual fixture workspaces alike —
//! keeps unrelated same-name items in sibling crates from short-circuiting
//! the reachability passes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parser::{CallKind, FileFacts, FnFact};

/// Call-graph size and resolution counters for the LINT report.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Function items parsed (including test functions).
    pub functions: usize,
    /// Distinct caller → callee edges between live functions.
    pub edges: usize,
    /// Call sites with at least one in-workspace candidate callee.
    pub resolved_calls: usize,
    /// Call sites with none (std / vendored / macro-generated targets).
    pub unresolved_calls: usize,
}

/// One function node: parser fact plus its file and owning crate.
pub struct Node {
    pub file: String,
    pub crate_name: String,
    pub fact: FnFact,
}

/// The resolved workspace call graph.
pub struct Graph {
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[i]` is the sorted, deduped callee set of node `i`.
    pub edges: Vec<Vec<usize>>,
    /// Per node, per call site (parallel to `nodes[i].fact.calls`), the
    /// resolved candidate callees — the arith dataflow pass needs the
    /// site-level mapping, not just the merged adjacency.
    pub call_targets: Vec<Vec<Vec<usize>>>,
    pub stats: GraphStats,
}

impl Graph {
    /// Human-readable node label: `Type::name` or `name`.
    pub fn label(&self, i: usize) -> String {
        let f = &self.nodes[i].fact;
        match &f.qualifier {
            Some(q) => format!("{q}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// BFS from `roots`; returns reachability plus a predecessor map for
    /// reconstructing one deterministic call chain per reached node.
    pub fn reach(&self, roots: &[usize]) -> (Vec<bool>, Vec<Option<usize>>) {
        let mut seen = vec![false; self.nodes.len()];
        let mut pred = vec![None; self.nodes.len()];
        let mut queue = VecDeque::new();
        for &r in roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if !seen[j] {
                    seen[j] = true;
                    pred[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        (seen, pred)
    }

    /// The call chain `root → ... → i` implied by `pred`, as node indices.
    pub fn chain(&self, pred: &[Option<usize>], i: usize) -> Vec<usize> {
        let mut chain = vec![i];
        let mut cur = i;
        while let Some(p) = pred[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }
}

type NameIdx = BTreeMap<(String, String), Vec<usize>>;
type QualIdx = BTreeMap<(String, String, String), Vec<usize>>;

/// Build the call graph from per-file parse facts.
pub fn build(files: Vec<FileFacts>) -> Graph {
    // Transitive crate-mention closure: crate → workspace crates it may
    // call into (always including itself).
    let mut mentions: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &files {
        let entry = mentions.entry(f.crate_name.clone()).or_default();
        for m in &f.crate_mentions {
            entry.insert(m.clone());
        }
    }
    let crates: BTreeSet<String> = mentions.keys().cloned().collect();
    loop {
        let mut grew = false;
        for c in &crates {
            let deps: Vec<String> = mentions[c].iter().cloned().collect();
            let mut add = BTreeSet::new();
            for d in &deps {
                if let Some(dd) = mentions.get(d) {
                    for x in dd {
                        if !mentions[c].contains(x) {
                            add.insert(x.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                mentions.get_mut(c).expect("crate key exists").extend(add);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Flatten into nodes (files arrive sorted; parse order within a file is
    // source order, so node indices are deterministic).
    let mut nodes = Vec::new();
    for f in files {
        let (path, crate_name, fns) = (f.path, f.crate_name, f.fns);
        for fact in fns {
            nodes.push(Node {
                file: path.clone(),
                crate_name: crate_name.clone(),
                fact,
            });
        }
    }

    // Indexes over live (non-test) nodes only, so test helpers can never
    // satisfy a production call edge.
    let mut free: NameIdx = BTreeMap::new();
    let mut method: NameIdx = BTreeMap::new();
    let mut by_qual: QualIdx = BTreeMap::new();
    let mut by_mod: QualIdx = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.fact.is_test {
            continue;
        }
        let c = n.crate_name.clone();
        let name = n.fact.name.clone();
        match &n.fact.qualifier {
            None => {
                free.entry((c.clone(), name.clone())).or_default().push(i);
                for m in &n.fact.modules {
                    by_mod
                        .entry((c.clone(), m.clone(), name.clone()))
                        .or_default()
                        .push(i);
                }
            }
            Some(q) => {
                method.entry((c.clone(), name.clone())).or_default().push(i);
                by_qual.entry((c, q.clone(), name)).or_default().push(i);
            }
        }
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut call_targets: Vec<Vec<Vec<usize>>> = vec![Vec::new(); nodes.len()];
    let mut resolved_calls = 0usize;
    let mut unresolved_calls = 0usize;

    for i in 0..nodes.len() {
        if nodes[i].fact.is_test {
            continue;
        }
        let caller_crate = nodes[i].crate_name.clone();
        let mut allowed: BTreeSet<&String> = mentions
            .get(&caller_crate)
            .map(|s| s.iter().collect())
            .unwrap_or_default();
        allowed.insert(&caller_crate);

        let mut per_call = Vec::with_capacity(nodes[i].fact.calls.len());
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for call in &nodes[i].fact.calls {
            let mut cands: BTreeSet<usize> = BTreeSet::new();
            match &call.kind {
                CallKind::Bare => {
                    for &c in &allowed {
                        if let Some(v) = free.get(&(c.clone(), call.name.clone())) {
                            cands.extend(v.iter().copied());
                        }
                    }
                }
                CallKind::Method => {
                    for &c in &allowed {
                        if let Some(v) = method.get(&(c.clone(), call.name.clone())) {
                            cands.extend(v.iter().copied());
                        }
                    }
                }
                CallKind::Path(segs) => {
                    let last = segs.last().map(String::as_str).unwrap_or("");
                    if last == "Self" {
                        if let Some(q) = &nodes[i].fact.qualifier {
                            if let Some(v) =
                                by_qual.get(&(caller_crate.clone(), q.clone(), call.name.clone()))
                            {
                                cands.extend(v.iter().copied());
                            }
                        }
                    } else {
                        for &c in &allowed {
                            if let Some(v) =
                                by_qual.get(&(c.clone(), last.to_string(), call.name.clone()))
                            {
                                cands.extend(v.iter().copied());
                            }
                            if let Some(v) =
                                by_mod.get(&(c.clone(), last.to_string(), call.name.clone()))
                            {
                                cands.extend(v.iter().copied());
                            }
                        }
                        // `lrb_core::rebalance(...)` — crate-root free fn.
                        if segs.len() == 1 && allowed.contains(&last.to_string()) {
                            if let Some(v) = free.get(&(last.to_string(), call.name.clone())) {
                                cands.extend(v.iter().copied());
                            }
                        }
                    }
                }
            }
            if cands.is_empty() {
                unresolved_calls += 1;
            } else {
                resolved_calls += 1;
            }
            out.extend(cands.iter().copied());
            per_call.push(cands.into_iter().collect::<Vec<_>>());
        }
        edges[i] = out.into_iter().collect();
        call_targets[i] = per_call;
    }

    let stats = GraphStats {
        functions: nodes.len(),
        edges: edges.iter().map(Vec::len).sum(),
        resolved_calls,
        unresolved_calls,
    };
    Graph {
        nodes,
        edges,
        call_targets,
        stats,
    }
}
