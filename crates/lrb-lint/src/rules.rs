//! The lint rule engine: the lexical layer of the analyzer, plus the rule
//! registry and pinned golden key sets shared with the semantic passes.
//!
//! Every rule here is lexical — it walks the token stream from
//! [`crate::lexer`] with test regions (`#[cfg(test)]` / `#[test]` items)
//! masked out, so production invariants are enforced without constraining
//! test code. The same rule *names* are reused by the call-graph passes in
//! [`crate::taint`], which widen three of them beyond their lexical path
//! scope; suppression directives therefore work identically for both
//! layers. A suppression must name the rule *and* give a reason; it covers
//! findings on its own line (trailing form) and on the next code line
//! (preceding form), and must suppress a *live* finding — a stale allow is
//! itself a finding (`stale-suppression`).

use crate::lexer::{Tok, TokKind};
use crate::scan::Scan;

/// Registry of every rule: `(name, one-line rationale)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-nondeterminism",
        "solver crates (lrb-core, lrb-engine) must not read clocks or use hash-ordered \
         collections — nor reach code that does, anywhere in the workspace; \
         reproducibility of the paper's guarantees depends on it",
    ),
    (
        "no-panic-core",
        "non-test lrb-core and lrb-serve code must not unwrap/expect/panic, and no panic \
         site anywhere may be reachable from the core/engine/serve public API; hot paths \
         and the daemon return Error or carry a reviewed allow at the root-cause site",
    ),
    (
        "checked-arith",
        "in lrb-core, bare +/-/* on load-typed values — by name, or by dataflow through \
         let bindings and fn signatures — must go through checked_*/saturating_* \
         (u128-widened arithmetic is exempt)",
    ),
    (
        "obs-name-registry",
        "metric names passed to Recorder calls must be lrb_obs::names:: consts, never \
         inline string literals",
    ),
    (
        "unsafe-audit",
        "every `unsafe` must be immediately preceded by a // SAFETY: comment",
    ),
    (
        "schema-key-pinning",
        "the JSON report key sets in lrb-cli/src/report.rs must match the golden sets \
         pinned in lrb-lint",
    ),
    (
        "stale-suppression",
        "every lint: allow must suppress a live finding; one that no longer fires is a \
         hard error — delete it or move it to the root-cause site the reachability \
         passes point at",
    ),
    (
        "allow-syntax",
        "lint: allow directives must name both a rule and a reason",
    ),
];

/// Golden copies of the pinned report key sets. `lrb-cli/src/report.rs` is
/// the producer-side pin; this is the independent consumer-side pin. A key
/// added or removed there without updating this table (a conscious,
/// reviewed act) fails the lint gate.
pub const GOLDEN_KEY_SETS: &[(&str, &[&str])] = &[
    (
        "BENCH_TOP_KEYS",
        &[
            "available_parallelism",
            "repeats",
            "rungs",
            "scenario",
            "schema_version",
            "seed",
            "solver",
            "thread_curve",
        ],
    ),
    ("BENCH_RUNG_KEYS", &["instances", "jobs", "name", "procs"]),
    (
        "BENCH_POINT_KEYS",
        &[
            "ladder_hits",
            "ladder_misses",
            "oversubscribed",
            "p50_solve_nanos",
            "p99_solve_nanos",
            "speedup_vs_1t",
            "steals",
            "threads",
            "throughput_per_sec",
            "wall_nanos",
        ],
    ),
    (
        "CHAOS_TOP_KEYS",
        &[
            "epochs",
            "moves",
            "points",
            "schema_version",
            "seed",
            "servers",
            "sites",
        ],
    ),
    (
        "CHAOS_POINT_KEYS",
        &[
            "budget_exhausted_epochs",
            "crash_rate",
            "epochs_degraded",
            "fallback_invocations",
            "forced_migrations",
            "mean_imbalance",
            "mean_oracle_regret",
            "p95_imbalance",
            "policy",
            "policy_rejections",
            "scenario",
            "total_migrations",
        ],
    ),
    (
        "ONLINE_TOP_KEYS",
        &[
            "arrival_rate",
            "arrivals",
            "bank_accrual",
            "bank_cap",
            "bank_initial",
            "budget_amount",
            "budget_kind",
            "departures",
            "epoch_curve",
            "epochs",
            "events",
            "final_loads",
            "final_makespan",
            "full_rebuilds",
            "incremental_updates",
            "initial_jobs",
            "mean_imbalance",
            "mean_lifetime",
            "moves_performed",
            "p95_imbalance",
            "policy",
            "rebalances",
            "schema_version",
            "seed",
            "servers",
            "total_migration_cost",
            "total_migrations",
        ],
    ),
    (
        "ONLINE_POINT_KEYS",
        &[
            "arrivals",
            "avg_load",
            "banked",
            "departures",
            "epoch",
            "makespan",
            "migration_cost",
            "migrations",
        ],
    ),
    (
        "HETERO_TOP_KEYS",
        &[
            "jobs",
            "moves",
            "path_independence",
            "procs",
            "schema_version",
            "seed",
            "solvers",
            "speeds",
            "stochastic",
        ],
    ),
    (
        "HETERO_SOLVER_KEYS",
        &[
            "budget_violations",
            "instances",
            "max_ratio_x1000",
            "solver",
            "total_lower_bound",
            "total_moves",
            "total_scaled_makespan",
        ],
    ),
    (
        "HETERO_STOCHASTIC_KEYS",
        &[
            "improved_trials",
            "moves_effective",
            "moves_mean_based",
            "regressed_trials",
            "theta_pct",
            "total_effective",
            "total_mean_based",
            "trials",
        ],
    ),
    (
        "HETERO_PATH_KEYS",
        &[
            "exact_matches",
            "fault_free",
            "max_hamming",
            "max_ratio_x1000",
            "seeds",
            "total_hamming",
        ],
    ),
    (
        "COMPETE_TOP_KEYS",
        &[
            "arrivals_per_epoch",
            "epochs",
            "grid",
            "max_size",
            "procs",
            "schema_version",
            "seed",
            "speeds",
        ],
    ),
    (
        "COMPETE_CELL_KEYS",
        &[
            "adversary",
            "certificate_overspend",
            "epochs_scored",
            "final_makespan",
            "final_opt",
            "mean_ratio_x1000",
            "policy",
            "total_migration_cost",
            "total_moves",
            "worst_ratio_x1000",
        ],
    ),
    (
        "TRACE_TOP_KEYS",
        &[
            "displayTimeUnit",
            "otherData",
            "schema_version",
            "traceEvents",
        ],
    ),
    (
        "TRACE_META_KEYS",
        &[
            "attributed_pct",
            "determinism_hash",
            "scenario",
            "seed",
            "solver",
            "span_count",
            "threads",
        ],
    ),
    (
        "TRACE_COMPLETE_KEYS",
        &["args", "dur", "name", "ph", "pid", "tid", "ts"],
    ),
    (
        "TRACE_INSTANT_KEYS",
        &["args", "name", "ph", "pid", "s", "tid", "ts"],
    ),
    ("TRACE_ARG_KEYS", &["seq", "v"]),
    ("SERVE_TOP_KEYS", &["applied", "schema_version", "tenants"]),
    (
        "SERVE_TENANT_KEYS",
        &[
            "arrivals",
            "bank_accrual",
            "bank_balance",
            "bank_cap",
            "bank_total_accrued",
            "bank_total_spent",
            "departures",
            "events",
            "full_rebuilds",
            "incremental_updates",
            "jobs",
            "moves_performed",
            "procs",
            "rebalances",
            "tenant",
        ],
    ),
    ("SERVE_JOB_KEYS", &["cost", "key", "proc", "size"]),
    (
        "LINT_TOP_KEYS",
        &[
            "call_graph",
            "files",
            "findings",
            "rules",
            "schema_version",
            "suppressions",
        ],
    ),
    (
        "LINT_GRAPH_KEYS",
        &["edges", "functions", "resolved_calls", "unresolved_calls"],
    ),
    ("LINT_RULE_KEYS", &["findings", "rule"]),
    (
        "LINT_FINDING_KEYS",
        &["col", "line", "message", "path", "rule"],
    ),
    ("LINT_SUPPRESSION_KEYS", &["sites", "stale", "total"]),
    ("LINT_SITE_KEYS", &["line", "path", "rule", "used"]),
];

/// One lint finding at an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Name of the rule that fired (a key of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Words that mark an identifier as load-typed for the `checked-arith` rule.
const LOAD_WORDS: &[&str] = &[
    "load", "size", "cost", "makespan", "total", "spent", "bank", "sum",
];

/// Identifiers that contain a load word but are not load-typed values.
const LOAD_WORD_EXEMPT: &[&str] = &["usize", "isize"];

/// Recorder and Tracer methods whose name arguments must use `names::`
/// consts.
const RECORDER_METHODS: &[&str] = &[
    "incr",
    "observe",
    "record_duration",
    "time",
    "span",
    "span_with",
    "instant",
    "enter",
];

pub(crate) fn is_loadish(name: &str) -> bool {
    if LOAD_WORD_EXEMPT.contains(&name) {
        return false;
    }
    let lower = name.to_ascii_lowercase();
    LOAD_WORDS.iter().any(|w| lower.contains(w))
}

/// Which rules apply lexically to `path` (workspace-relative,
/// `/`-separated). The semantic passes use the same scopes to decide which
/// files the lexical layer already owns.
pub(crate) struct Scope {
    pub(crate) nondeterminism: bool,
    pub(crate) panic_core: bool,
    pub(crate) checked_arith: bool,
    pub(crate) obs_names: bool,
    pub(crate) unsafe_audit: bool,
    pub(crate) schema_keys: bool,
}

impl Scope {
    pub(crate) fn of(path: &str) -> Self {
        let p = path.replace('\\', "/");
        let in_core = p.contains("crates/lrb-core/src/");
        let in_engine = p.contains("crates/lrb-engine/src/");
        let in_serve = p.contains("crates/lrb-serve/src/");
        let in_crate_src = p.contains("crates/") && p.contains("/src/");
        Scope {
            nondeterminism: in_core || in_engine,
            // The daemon must degrade via Reject/Error responses, never
            // abort: a panic in lrb-serve is an availability bug.
            panic_core: in_core || in_serve,
            checked_arith: in_core,
            obs_names: in_crate_src
                && !p.contains("crates/lrb-obs/")
                && !p.contains("crates/lrb-lint/"),
            unsafe_audit: true,
            schema_keys: p.ends_with("crates/lrb-cli/src/report.rs"),
        }
    }
}

/// Lint one file's source with the full analyzer (lexical rules *and* the
/// semantic passes, over a single-file virtual workspace). `path` decides
/// which rules apply; it should be workspace-relative (e.g.
/// `crates/lrb-core/src/greedy.rs`).
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    crate::lint_sources(&[(path, src)])
}

/// Run every lexical rule in `path`'s scope over one file's token scan.
pub(crate) fn lexical_findings(scan: &Scan<'_>, path: &str, findings: &mut Vec<Finding>) {
    let scope = Scope::of(path);
    if scope.nondeterminism {
        rule_no_nondeterminism(scan, path, findings);
    }
    if scope.panic_core {
        rule_no_panic_core(scan, path, findings);
    }
    if scope.checked_arith {
        rule_checked_arith(scan, path, findings);
    }
    if scope.obs_names {
        rule_obs_names(scan, path, findings);
    }
    if scope.unsafe_audit {
        rule_unsafe_audit(scan, path, findings);
    }
    if scope.schema_keys {
        rule_schema_keys(scan, path, findings);
    }
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, path: &str, tok: &Tok, message: String) {
    findings.push(Finding {
        rule,
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
    });
}

fn rule_no_nondeterminism(scan: &Scan<'_>, path: &str, findings: &mut Vec<Finding>) {
    for s in 0..scan.sig.len() {
        if scan.is_test(s) {
            continue;
        }
        let Some(t) = scan.sig_tok(s) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => push(
                findings,
                "no-nondeterminism",
                path,
                t,
                format!(
                    "{} in a solver crate: iteration order is nondeterministic; use \
                     BTreeMap/BTreeSet or index-keyed Vecs (allow only for keyed lookups \
                     that are never iterated)",
                    t.text
                ),
            ),
            "Instant" | "SystemTime"
                if scan.sig_text(s + 1) == "::" && scan.sig_text(s + 2) == "now" =>
            {
                push(
                    findings,
                    "no-nondeterminism",
                    path,
                    t,
                    format!(
                        "{}::now() in a solver crate: wall-clock reads must never \
                         influence results (allow only for telemetry)",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

fn rule_no_panic_core(scan: &Scan<'_>, path: &str, findings: &mut Vec<Finding>) {
    for s in 0..scan.sig.len() {
        if scan.is_test(s) {
            continue;
        }
        let Some(t) = scan.sig_tok(s) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_method = matches!(name, "unwrap" | "expect")
            && s > 0
            && scan.sig_text(s - 1) == "."
            && scan.sig_text(s + 1) == "(";
        let is_macro = matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && scan.sig_text(s + 1) == "!";
        if is_method || is_macro {
            push(
                findings,
                "no-panic-core",
                path,
                t,
                format!(
                    "{name}{} in non-test lrb-core code: return Error or document the \
                     invariant with an allow",
                    if is_macro { "!" } else { "()" }
                ),
            );
        }
    }
}

fn rule_checked_arith(scan: &Scan<'_>, path: &str, findings: &mut Vec<Finding>) {
    for s in 0..scan.sig.len() {
        if scan.is_test(s) {
            continue;
        }
        let Some(t) = scan.sig_tok(s) else { continue };
        if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "*") {
            continue;
        }
        // Binary use only: the previous token must be able to end an operand.
        let binary = s > 0
            && scan.sig_tok(s - 1).is_some_and(|p| {
                matches!(p.kind, TokKind::Ident | TokKind::Num)
                    || matches!(p.text.as_str(), ")" | "]")
            });
        if !binary {
            continue;
        }
        // u128/i128-widened arithmetic is exact by construction, and float
        // arithmetic cannot overflow-panic (its determinism is a separate
        // concern the nondeterminism rule owns).
        let widened = (s.saturating_sub(5)..s)
            .chain(s + 1..(s + 6).min(scan.sig.len()))
            .any(|k| matches!(scan.sig_text(k), "u128" | "i128" | "f64" | "f32"));
        if widened {
            continue;
        }
        // Nearest identifier on each side (skipping closing/opening brackets
        // and field dots) decides whether the operands look load-typed.
        let prev_ident = (s.saturating_sub(3)..s)
            .rev()
            .filter_map(|k| scan.sig_tok(k))
            .find(|t| t.kind == TokKind::Ident);
        let next_ident = (s + 1..(s + 4).min(scan.sig.len()))
            .filter_map(|k| scan.sig_tok(k))
            .find(|t| t.kind == TokKind::Ident);
        let loadish = prev_ident
            .into_iter()
            .chain(next_ident)
            .find(|t| is_loadish(&t.text));
        if let Some(operand) = loadish {
            push(
                findings,
                "checked-arith",
                path,
                t,
                format!(
                    "bare `{}` on load-typed operand `{}`: use checked_*/saturating_* \
                     (or widen through u128)",
                    t.text, operand.text
                ),
            );
        }
    }
}

fn rule_obs_names(scan: &Scan<'_>, path: &str, findings: &mut Vec<Finding>) {
    for s in 0..scan.sig.len() {
        if scan.is_test(s) {
            continue;
        }
        let Some(t) = scan.sig_tok(s) else { continue };
        let is_call = t.kind == TokKind::Ident
            && RECORDER_METHODS.contains(&t.text.as_str())
            && s > 0
            && scan.sig_text(s - 1) == "."
            && scan.sig_text(s + 1) == "(";
        if !is_call {
            continue;
        }
        // Flag every string literal inside the call's parentheses.
        let mut depth = 0usize;
        let mut k = s + 1;
        while let Some(a) = scan.sig_tok(k) {
            match a.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if a.kind == TokKind::Str {
                push(
                    findings,
                    "obs-name-registry",
                    path,
                    a,
                    format!(
                        "string literal {} passed to Recorder::{}; register it as a \
                         const in lrb_obs::names and reference that",
                        a.text, t.text
                    ),
                );
            }
            k += 1;
        }
    }
}

fn rule_unsafe_audit(scan: &Scan<'_>, path: &str, findings: &mut Vec<Finding>) {
    for s in 0..scan.sig.len() {
        if scan.is_test(s) {
            continue;
        }
        let Some(t) = scan.sig_tok(s) else { continue };
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // Walk the raw stream backwards over the comments directly above.
        let raw = scan.sig[s];
        let documented = scan.toks[..raw]
            .iter()
            .rev()
            .take_while(|p| p.is_comment())
            .any(|p| p.text.contains("SAFETY:"));
        if !documented {
            push(
                findings,
                "unsafe-audit",
                path,
                t,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            );
        }
    }
}

fn rule_schema_keys(scan: &Scan<'_>, path: &str, findings: &mut Vec<Finding>) {
    for &(name, golden) in GOLDEN_KEY_SETS {
        // Find `const <name>` (the definition, not uses in validators).
        let def = (0..scan.sig.len())
            .find(|&s| scan.sig_text(s) == "const" && scan.sig_text(s + 1) == name);
        let Some(s) = def else {
            findings.push(Finding {
                rule: "schema-key-pinning",
                path: path.to_string(),
                line: 1,
                col: 1,
                message: format!("pinned key-set const {name} is missing from report.rs"),
            });
            continue;
        };
        let def_tok = scan.sig_tok(s + 1).cloned();
        let mut keys: Vec<String> = Vec::new();
        let mut k = s + 2;
        while !matches!(scan.sig_text(k), ";" | "") {
            if let Some(t) = scan.sig_tok(k) {
                if t.kind == TokKind::Str {
                    keys.push(t.text.trim_matches('"').to_string());
                }
            }
            k += 1;
        }
        let missing: Vec<&str> = golden
            .iter()
            .copied()
            .filter(|g| !keys.iter().any(|k| k == g))
            .collect();
        let extra: Vec<&String> = keys
            .iter()
            .filter(|k| !golden.contains(&k.as_str()))
            .collect();
        if !missing.is_empty() || !extra.is_empty() {
            let tok = def_tok.unwrap_or(Tok {
                kind: TokKind::Ident,
                text: name.to_string(),
                line: 1,
                col: 1,
            });
            push(
                findings,
                "schema-key-pinning",
                path,
                &tok,
                format!(
                    "{name} drifted from the golden set: missing {missing:?}, unexpected \
                     {extra:?}; schema changes need a version bump and a golden update in \
                     lrb-lint",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE: &str = "crates/lrb-core/src/some_solver.rs";

    #[test]
    fn test_regions_are_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let f = lint_source(CORE, src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (1, "no-panic-core"));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = lint_source(CORE, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn allow_needs_a_reason() {
        let src = "// lint: allow(no-panic-core)\nfn f() { x.unwrap(); }\n";
        let f = lint_source(CORE, src);
        assert!(f.iter().any(|f| f.rule == "allow-syntax"));
        assert!(f.iter().any(|f| f.rule == "no-panic-core"));
    }

    #[test]
    fn trailing_and_preceding_allows_suppress() {
        let src = "fn f() { x.unwrap(); } // lint: allow(no-panic-core, invariant: x is Some)\n\
                   // lint: allow(no-panic-core, same, on the next line)\n\
                   fn g() { y.unwrap(); }\n";
        assert_eq!(lint_source(CORE, src), vec![]);
    }

    #[test]
    fn allow_is_rule_specific() {
        let src = "// lint: allow(no-nondeterminism, wrong rule)\nfn f() { x.unwrap(); }\n";
        let f = lint_source(CORE, src);
        // The unwrap still fires, and the mismatched allow — suppressing
        // nothing — is itself a stale-suppression finding.
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|f| f.rule == "no-panic-core" && f.line == 2));
        assert!(f
            .iter()
            .any(|f| f.rule == "stale-suppression" && f.line == 1));
    }

    #[test]
    fn out_of_scope_paths_are_quiet() {
        let src = "fn f() { x.unwrap(); let m = HashMap::new(); }\n";
        assert_eq!(lint_source("crates/lrb-cli/src/commands.rs", src), vec![]);
    }
}
