//! The semantic passes over the call graph: panic-reachability,
//! nondeterminism-taint, and checked-arith dataflow.
//!
//! Each pass reports at the *root-cause site* (the sink line itself), so a
//! suppression must be placed where the invariant is actually discharged,
//! never at the public API that merely reaches it. Sites already covered by
//! the corresponding lexical rule's path scope are skipped — the lexical
//! rule flags them with identical positions, so the semantic passes are a
//! strict widening, never a double report.

use std::collections::BTreeSet;

use crate::graph::Graph;
use crate::rules::{is_loadish, Finding, Scope};

/// Crates whose public surface anchors the panic-reachability pass.
const PANIC_ROOT_CRATES: &[&str] = &["lrb_core", "lrb_engine", "lrb_serve"];
/// Crates whose public surface anchors the nondeterminism-taint pass.
const NONDET_ROOT_CRATES: &[&str] = &["lrb_core", "lrb_engine"];

/// Public API nodes of `crates`: unrestricted-`pub` fns and trait-surface
/// methods in the crates' own `src/` trees, excluding test code.
fn roots(g: &Graph, crates: &[&str]) -> Vec<usize> {
    (0..g.nodes.len())
        .filter(|&i| {
            let n = &g.nodes[i];
            crates.contains(&n.crate_name.as_str())
                && !n.fact.is_test
                && (n.fact.is_pub || n.fact.in_trait)
                && n.file.contains("/src/")
        })
        .collect()
}

/// Render the call chain `root → ... → sink` for a finding message,
/// eliding the middle of long chains.
fn chain_text(g: &Graph, chain: &[usize]) -> String {
    let names: Vec<String> = chain.iter().map(|&i| format!("`{}`", g.label(i))).collect();
    if names.len() <= 5 {
        names.join(" -> ")
    } else {
        format!(
            "{} -> {} -> ... -> {}",
            names[0],
            names[1],
            names[names.len() - 1]
        )
    }
}

/// Panic-reachability: any `unwrap`/`expect`/`panic!`-family site
/// transitively reachable from the public API of core/engine/serve is a
/// finding at the sink, wherever the sink lives.
pub fn panic_pass(g: &Graph, findings: &mut Vec<Finding>) {
    let roots = roots(g, PANIC_ROOT_CRATES);
    let (seen, pred) = g.reach(&roots);
    for (i, reached) in seen.iter().enumerate() {
        if !reached || Scope::of(&g.nodes[i].file).panic_core {
            continue; // lexical rule already owns in-scope files
        }
        if g.nodes[i].fact.panics.is_empty() {
            continue;
        }
        let chain = g.chain(&pred, i);
        let via = chain_text(g, &chain);
        for site in &g.nodes[i].fact.panics {
            findings.push(Finding {
                rule: "no-panic-core",
                path: g.nodes[i].file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} is reachable from public solver/daemon API: {} -> {}; return Error \
                     or document the invariant with an allow at this root-cause site",
                    site.what, via, site.what
                ),
            });
        }
    }
}

/// Nondeterminism-taint: clock reads and hash-ordered collections anywhere
/// reachable from the core/engine public surface taint the solve paths.
pub fn nondet_pass(g: &Graph, findings: &mut Vec<Finding>) {
    let roots = roots(g, NONDET_ROOT_CRATES);
    let (seen, pred) = g.reach(&roots);
    for (i, reached) in seen.iter().enumerate() {
        if !reached || Scope::of(&g.nodes[i].file).nondeterminism {
            continue;
        }
        if g.nodes[i].fact.nondet.is_empty() {
            continue;
        }
        let chain = g.chain(&pred, i);
        let via = chain_text(g, &chain);
        for site in &g.nodes[i].fact.nondet {
            findings.push(Finding {
                rule: "no-nondeterminism",
                path: g.nodes[i].file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} is reachable from solver API: {}; nondeterministic state must not \
                     feed solve/epoch paths (allow only for telemetry or keyed lookups)",
                    site.what, via
                ),
            });
        }
    }
}

/// Checked-arith dataflow: track load-typed values through `let` bindings
/// and call-argument → parameter positions inside `lrb-core`, then flag
/// bare arithmetic whose operand is load-typed *by flow* even though its
/// name gives the lexical rule nothing to see.
pub fn arith_flow_pass(g: &Graph, findings: &mut Vec<Finding>) {
    let core: Vec<usize> = (0..g.nodes.len())
        .filter(|&i| g.nodes[i].crate_name == "lrb_core" && !g.nodes[i].fact.is_test)
        .collect();

    // Per-node set of load-typed local names (params and let bindings).
    let mut load: Vec<BTreeSet<String>> = vec![BTreeSet::new(); g.nodes.len()];
    for &i in &core {
        for p in &g.nodes[i].fact.params {
            if is_loadish(p) {
                load[i].insert(p.clone());
            }
        }
    }

    // Fixpoint: a let binding whose rhs touches a load-typed name (or a
    // loadish-named call) binds a load-typed name; a loadish argument slot
    // makes the callee's parameter in that position load-typed.
    for _round in 0..10 {
        let mut changed = false;
        for &i in &core {
            let fact = &g.nodes[i].fact;
            let mut gained: Vec<String> = Vec::new();
            for l in &fact.lets {
                if load[i].contains(&l.name) {
                    continue;
                }
                let tainted = l
                    .idents
                    .iter()
                    .any(|x| is_loadish(x) || load[i].contains(x))
                    || l.calls.iter().any(|c| is_loadish(c));
                if tainted {
                    gained.push(l.name.clone());
                }
            }
            for name in gained {
                changed |= load[i].insert(name);
            }
            for (k, call) in fact.calls.iter().enumerate() {
                let Some(targets) = g.call_targets[i].get(k) else {
                    continue;
                };
                for (slot, arg) in call.args.iter().enumerate() {
                    let tainted = arg
                        .idents
                        .iter()
                        .any(|x| is_loadish(x) || load[i].contains(x))
                        || arg.calls.iter().any(|c| is_loadish(c));
                    if !tainted {
                        continue;
                    }
                    for &t in targets {
                        if g.nodes[t].crate_name != "lrb_core" {
                            continue;
                        }
                        if let Some(p) = g.nodes[t].fact.params.get(slot) {
                            let p = p.clone();
                            changed |= load[t].insert(p);
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    for &i in &core {
        if !Scope::of(&g.nodes[i].file).checked_arith {
            continue; // dataflow extends the lexical rule, same file scope
        }
        for a in &g.nodes[i].fact.arith {
            let Some(op) = a
                .operands
                .iter()
                .find(|o| !is_loadish(o) && load[i].contains(*o))
            else {
                continue;
            };
            findings.push(Finding {
                rule: "checked-arith",
                path: g.nodes[i].file.clone(),
                line: a.line,
                col: a.col,
                message: format!(
                    "bare `{}` on `{}`, which is load-typed by dataflow (bound from a load \
                     expression in `{}`): use checked_*/saturating_* or widen through u128",
                    a.op,
                    op,
                    g.label(i)
                ),
            });
        }
    }
}
