//! # lrb-lint — workspace invariant checker
//!
//! The differential and equivalence suites *test* the workspace's core
//! invariants (solver determinism, panic-freedom, overflow discipline,
//! schema stability); this crate *statically certifies* the code patterns
//! those invariants depend on, and adversarially stress-tests the one
//! genuinely racy subsystem:
//!
//! * [`rules`] — a lexical rule engine over a hand-rolled Rust lexer
//!   ([`lexer`]) with six rules and per-site
//!   `// lint: allow(<rule>, <reason>)` suppressions.
//! * [`schedules`] — seeded pathological-scheduler exploration of the
//!   `lrb-engine` work-stealing executor, asserting result bit-identity
//!   across adversarial schedules.
//!
//! Both run as hard gates in `scripts/check.sh`. See `DESIGN.md` §11.

pub mod lexer;
pub mod rules;
pub mod schedules;

use std::path::{Path, PathBuf};

use rules::Finding;

/// Directory names never descended into when walking a workspace.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "fixtures",
    "benches",
    "node_modules",
];

/// Workspace directories that are linted (relative to the root).
const LINT_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Collect every lintable `.rs` file under `root`, workspace-relative.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in LINT_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lint every workspace file under `root`; findings carry root-relative
/// paths so rule scoping is independent of where the tool is invoked from.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in collect_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        findings.extend(rules::lint_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(findings)
}
