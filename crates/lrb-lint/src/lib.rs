//! # lrb-lint — workspace invariant checker
//!
//! The differential and equivalence suites *test* the workspace's core
//! invariants (solver determinism, panic-freedom, overflow discipline,
//! schema stability); this crate *statically certifies* the code patterns
//! those invariants depend on, and adversarially stress-tests the one
//! genuinely racy subsystem:
//!
//! * [`rules`] — the lexical rule layer over a hand-rolled Rust lexer
//!   ([`lexer`]) with per-site `// lint: allow(<rule>, <reason>)`
//!   suppressions.
//! * [`parser`] / [`graph`] / [`taint`] — the semantic layer: an item
//!   parser extracts functions, calls, and sink sites; a cross-crate
//!   call graph is resolved by name under a crate-dependency filter; and
//!   reachability/taint passes widen the panic, nondeterminism, and
//!   checked-arith rules from per-file path scopes to whole-workspace
//!   properties of the reachable computation.
//! * [`report`] — schema-pinned `LINT_1.json` emission (findings,
//!   per-rule counts, call-graph stats, suppression inventory).
//! * [`schedules`] — seeded pathological-scheduler exploration of the
//!   `lrb-engine` work-stealing executor, asserting result bit-identity
//!   across adversarial schedules.
//!
//! All of it runs as hard gates in `scripts/check.sh`. See DESIGN.md §11
//! (lexical layer) and §16 (semantic layer).

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
mod scan;
pub mod schedules;
pub mod taint;

use std::path::{Path, PathBuf};

use lrb_obs::{names, NoopRecorder, NoopTracer, Recorder, Tracer};

pub use graph::GraphStats;
pub use report::{
    report_json, LINT_FINDING_KEYS, LINT_GRAPH_KEYS, LINT_RULE_KEYS, LINT_SCHEMA_VERSION,
    LINT_SITE_KEYS, LINT_SUPPRESSION_KEYS, LINT_TOP_KEYS,
};
pub use rules::Finding;

/// Directory names never descended into when walking a workspace.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "fixtures",
    "benches",
    "node_modules",
];

/// Workspace directories that are linted (relative to the root).
const LINT_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// One `// lint: allow(...)` directive and whether it earned its keep.
#[derive(Debug, Clone)]
pub struct SuppressionSite {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: String,
    /// `true` when the directive suppressed at least one live finding.
    pub used: bool,
}

/// Full analyzer output: filtered findings plus the report inventory.
pub struct Analysis {
    /// Findings surviving suppression, in (path, line, col, rule) order.
    /// Includes `stale-suppression` findings for unused allows.
    pub findings: Vec<Finding>,
    /// Files analyzed.
    pub files: usize,
    /// Call-graph size and resolution counters.
    pub graph: GraphStats,
    /// Every suppression directive seen, in file order.
    pub suppressions: Vec<SuppressionSite>,
}

/// Collect every lintable `.rs` file under `root`, workspace-relative.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in LINT_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Analyze a set of `(workspace-relative path, source)` files as one
/// virtual workspace: lexical rules per file, then the call-graph passes
/// across all of them, then suppression filtering and the stale pass.
///
/// Instrumentation goes to `rec`/`tracer` under the `lint.*` names, so
/// analyzer cost shows up in `lrb trace` like every other subsystem.
pub fn analyze_sources<R: Recorder, T: Tracer>(
    files: &[(&str, &str)],
    rec: &R,
    tracer: &T,
) -> Analysis {
    let mut findings: Vec<Finding> = Vec::new();
    let mut facts = Vec::new();
    let mut allows: Vec<(String, Vec<scan::Allow>)> = Vec::new();

    {
        let _t = rec.time(names::LINT_PARSE);
        for (i, (path, src)) in files.iter().enumerate() {
            let _s = tracer.span_with(names::LINT_PARSE, i as u64, false);
            let toks = lexer::lex(src);
            let sc = scan::Scan::new(&toks);
            let file_allows = scan::collect_allows(&toks, &sc.sig, path, &mut findings);
            rules::lexical_findings(&sc, path, &mut findings);
            facts.push(parser::parse_file(path, &sc));
            allows.push((path.to_string(), file_allows));
        }
    }

    let g = {
        let _t = rec.time(names::LINT_GRAPH);
        let _s = tracer.span(names::LINT_GRAPH);
        graph::build(facts)
    };

    {
        let _t = rec.time(names::LINT_PASS);
        type Pass = fn(&graph::Graph, &mut Vec<Finding>);
        const PASSES: &[Pass] = &[
            taint::panic_pass,
            taint::nondet_pass,
            taint::arith_flow_pass,
        ];
        for (k, pass) in PASSES.iter().enumerate() {
            let _s = tracer.span_with(names::LINT_PASS, k as u64, false);
            pass(&g, &mut findings);
        }
    }

    // Suppression filtering: a matching allow eats the finding and is
    // marked used. `allow-syntax` findings can never be suppressed.
    let mut kept = Vec::with_capacity(findings.len());
    for f in findings {
        let mut suppressed = false;
        if f.rule != "allow-syntax" {
            if let Some((_, list)) = allows.iter_mut().find(|(p, _)| p == &f.path) {
                for a in list.iter_mut() {
                    if a.rule == f.rule && a.lines.contains(&f.line) {
                        a.used = true;
                        suppressed = true;
                    }
                }
            }
        }
        if !suppressed {
            kept.push(f);
        }
    }
    let mut findings = kept;

    // Stale pass: every directive must have suppressed something live.
    let mut suppressions = Vec::new();
    for (path, list) in &allows {
        for a in list {
            if !a.used {
                findings.push(Finding {
                    rule: "stale-suppression",
                    path: path.clone(),
                    line: a.line,
                    col: a.col,
                    message: format!(
                        "allow({}) suppresses nothing: delete it, or move it to the \
                         root-cause site the reachability passes point at",
                        a.rule
                    ),
                });
            }
            suppressions.push(SuppressionSite {
                path: path.clone(),
                line: a.line,
                col: a.col,
                rule: a.rule.clone(),
                used: a.used,
            });
        }
    }

    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    // The lexical checked-arith rule and the flow pass can flag the same
    // operator (one side loadish-named, the other load-typed by flow); one
    // report per site is enough, keeping the first — the lexical message.
    // Other rules legitimately stack distinct findings on one position
    // (e.g. several missing pinned consts all anchor at 1:1), so the dedup
    // is scoped to that one rule.
    findings.dedup_by(|b, a| {
        a.rule == "checked-arith"
            && b.rule == "checked-arith"
            && a.path == b.path
            && a.line == b.line
            && a.col == b.col
    });

    rec.incr(names::LINT_FILES, files.len() as u64);
    rec.incr(names::LINT_FUNCTIONS, g.stats.functions as u64);
    rec.incr(names::LINT_EDGES, g.stats.edges as u64);
    rec.incr(names::LINT_FINDINGS, findings.len() as u64);

    Analysis {
        findings,
        files: files.len(),
        graph: g.stats,
        suppressions,
    }
}

/// [`analyze_sources`] without instrumentation, returning only findings.
pub fn lint_sources(files: &[(&str, &str)]) -> Vec<Finding> {
    analyze_sources(files, &NoopRecorder, &NoopTracer).findings
}

/// Read and analyze every workspace file under `root`; findings carry
/// root-relative paths so rule scoping is independent of where the tool is
/// invoked from.
pub fn analyze_workspace<R: Recorder, T: Tracer>(
    root: &Path,
    rec: &R,
    tracer: &T,
) -> std::io::Result<Analysis> {
    let _run = tracer.span(names::LINT_RUN);
    let mut sources: Vec<(String, String)> = Vec::new();
    for file in collect_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        sources.push((rel, src));
    }
    let views: Vec<(&str, &str)> = sources
        .iter()
        .map(|(p, s)| (p.as_str(), s.as_str()))
        .collect();
    Ok(analyze_sources(&views, rec, tracer))
}

/// Lint every workspace file under `root` with the full analyzer.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    analyze_workspace(root, &NoopRecorder, &NoopTracer).map(|a| a.findings)
}
