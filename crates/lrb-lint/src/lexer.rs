//! A hand-rolled Rust lexer, just rich enough for lexical lint rules.
//!
//! The token stream preserves comments (suppression directives and
//! `// SAFETY:` audits live there) and classifies every literal flavor the
//! language has — plain/raw/byte strings, char literals vs. lifetimes,
//! nested block comments — so no rule ever fires on text inside a string or
//! a comment. Multi-character operators are lexed greedily (`+=` is one
//! token, never `+` then `=`), which is what lets the arithmetic rule
//! distinguish a bare `+` from a compound assignment.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`42`, `0xff`, `1.5`).
    Num,
    /// String literal of any flavor (`"x"`, `r#"x"#`, `b"x"`, `c"x"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Operator or delimiter, possibly multi-character (`+=`, `::`, `{`).
    Punct,
    /// `// ...` comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* ... */` comment, nesting handled.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's exact source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators, longest first so lexing is greedy.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self, out: &mut String) {
        if let Some(c) = self.chars.get(self.i).copied() {
            out.push(c);
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize, out: &mut String) {
        for _ in 0..n {
            self.bump(out);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Length of a raw-string prefix (`r"`, `r#"`, `br##"`, `c"`) starting at
/// offset `at`, or `None` if the text there is not a raw/byte string start.
/// Returns `(prefix_len_before_quote, hashes)` where the quote itself sits at
/// `at + prefix_len_before_quote`.
fn raw_string_start(lx: &Lexer, at: usize) -> Option<(usize, usize)> {
    let mut k = at;
    match lx.peek(k) {
        Some('b') | Some('c') if lx.peek(k + 1) == Some('r') => k += 2,
        Some('r') => k += 1,
        _ => return None,
    }
    let mut hashes = 0;
    while lx.peek(k + hashes) == Some('#') {
        hashes += 1;
    }
    if lx.peek(k + hashes) == Some('"') {
        Some((k + hashes - at, hashes))
    } else {
        None
    }
}

/// Lex `src` into a token vector. Never fails: unterminated constructs are
/// swallowed to end-of-file, which is the forgiving behavior a linter wants.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();

    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        let mut text = String::new();

        if c.is_whitespace() {
            lx.bump(&mut text);
            continue;
        }

        let kind = if c == '/' && lx.peek(1) == Some('/') {
            while lx.peek(0).is_some_and(|c| c != '\n') {
                lx.bump(&mut text);
            }
            TokKind::LineComment
        } else if c == '/' && lx.peek(1) == Some('*') {
            lx.bump_n(2, &mut text);
            let mut depth = 1usize;
            while depth > 0 && lx.peek(0).is_some() {
                if lx.peek(0) == Some('/') && lx.peek(1) == Some('*') {
                    depth += 1;
                    lx.bump_n(2, &mut text);
                } else if lx.peek(0) == Some('*') && lx.peek(1) == Some('/') {
                    depth -= 1;
                    lx.bump_n(2, &mut text);
                } else {
                    lx.bump(&mut text);
                }
            }
            TokKind::BlockComment
        } else if let Some((prefix, hashes)) = raw_string_start(&lx, 0) {
            // Raw (possibly byte/C) string: scan to `"` followed by `hashes`
            // `#`s.
            lx.bump_n(prefix + 1, &mut text); // prefix + opening quote
            loop {
                match lx.peek(0) {
                    None => break,
                    Some('"') => {
                        let closed = (0..hashes).all(|h| lx.peek(1 + h) == Some('#'));
                        lx.bump_n(1 + if closed { hashes } else { 0 }, &mut text);
                        if closed {
                            break;
                        }
                    }
                    Some(_) => lx.bump(&mut text),
                }
            }
            TokKind::Str
        } else if c == '"' || ((c == 'b' || c == 'c') && lx.peek(1) == Some('"')) {
            if c != '"' {
                lx.bump(&mut text); // b / c prefix
            }
            lx.bump(&mut text); // opening quote
            loop {
                match lx.peek(0) {
                    None => break,
                    Some('\\') => lx.bump_n(2, &mut text),
                    Some('"') => {
                        lx.bump(&mut text);
                        break;
                    }
                    Some(_) => lx.bump(&mut text),
                }
            }
            TokKind::Str
        } else if c == '\'' || (c == 'b' && lx.peek(1) == Some('\'')) {
            let quote_at = usize::from(c == 'b');
            // Lifetime vs char literal: after the quote, an identifier not
            // followed by a closing quote is a lifetime.
            let mut j = quote_at + 1;
            let lead = lx.peek(j);
            if c != 'b' && lead.is_some_and(is_ident_start) && lead != Some('\\') {
                while lx.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if lx.peek(j) != Some('\'') {
                    lx.bump_n(j, &mut text);
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
            }
            // Char/byte literal: consume through the closing quote.
            lx.bump_n(quote_at + 1, &mut text);
            loop {
                match lx.peek(0) {
                    None => break,
                    Some('\\') => lx.bump_n(2, &mut text),
                    Some('\'') => {
                        lx.bump(&mut text);
                        break;
                    }
                    Some(_) => lx.bump(&mut text),
                }
            }
            TokKind::Char
        } else if is_ident_start(c) {
            // `r#ident` raw identifiers lex as one ident token.
            if c == 'r' && lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) {
                lx.bump_n(2, &mut text);
            }
            while lx.peek(0).is_some_and(is_ident_continue) {
                lx.bump(&mut text);
            }
            TokKind::Ident
        } else if c.is_ascii_digit() {
            while lx.peek(0).is_some_and(is_ident_continue) {
                lx.bump(&mut text);
            }
            // Fractional part: `1.5` but not `0..8` or `1.max(2)`.
            if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                lx.bump(&mut text);
                while lx.peek(0).is_some_and(is_ident_continue) {
                    lx.bump(&mut text);
                }
            }
            TokKind::Num
        } else {
            let matched = PUNCTS
                .iter()
                .find(|p| p.chars().enumerate().all(|(k, pc)| lx.peek(k) == Some(pc)));
            match matched {
                Some(p) => lx.bump_n(p.chars().count(), &mut text),
                None => lx.bump(&mut text),
            }
            TokKind::Punct
        };

        toks.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let toks = kinds("let x += 2 - y.z;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "+=".into()),
                (TokKind::Num, "2".into()),
                (TokKind::Punct, "-".into()),
                (TokKind::Ident, "y".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "z".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"incr("panic! + unwrap()")"#);
        assert_eq!(toks[2].0, TokKind::Str);
        assert_eq!(toks.len(), 4); // incr ( "..." )
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#;"##);
        assert_eq!(toks[3].0, TokKind::Str);
        assert_eq!(toks[3].1, r##"r#"quote " inside"#"##);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(kinds(r#"b"x""#)[0].0, TokKind::Str);
        assert_eq!(kinds(r#"c"x""#)[0].0, TokKind::Str);
        assert_eq!(kinds(r##"br#"x"#"##)[0].0, TokKind::Str);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("&'a str; 'x'; '\\n'; b'y'");
        assert_eq!(toks[1].0, TokKind::Lifetime);
        assert_eq!(toks[1].1, "'a");
        assert_eq!(toks[4].0, TokKind::Char);
        assert_eq!(toks[4].1, "'x'");
        assert_eq!(toks[6].0, TokKind::Char);
        assert_eq!(toks[8].0, TokKind::Char);
        assert_eq!(toks[8].1, "b'y'");
    }

    #[test]
    fn static_lifetime_and_ranges() {
        let toks = kinds("&'static str");
        assert_eq!(toks[1].0, TokKind::Lifetime);
        let toks = kinds("0..8");
        assert_eq!(
            toks.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![TokKind::Num, TokKind::Punct, TokKind::Num]
        );
        assert_eq!(toks[1].1, "..");
    }

    #[test]
    fn float_literals() {
        let toks = kinds("1.5 + 2.0e3");
        assert_eq!(toks[0].1, "1.5");
        assert_eq!(toks[2].1, "2.0e3");
    }

    #[test]
    fn line_and_col_are_tracked() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = lex("/// has unwrap() in prose\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[1].text, "fn");
    }
}
