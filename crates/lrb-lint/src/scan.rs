//! Shared token-stream scanning infrastructure: the significant-token view
//! with its test-region mask, and `// lint: allow(<rule>, <reason>)`
//! suppression parsing. Both the lexical rules ([`crate::rules`]) and the
//! semantic item parser ([`crate::parser`]) are built on [`Scan`], so the
//! two layers agree exactly on what counts as test code.

use crate::lexer::{Tok, TokKind};
use crate::rules::Finding;

/// Token-stream view with test-region mask and significant-token index.
pub(crate) struct Scan<'a> {
    pub(crate) toks: &'a [Tok],
    /// Indices into `toks` of non-comment tokens.
    pub(crate) sig: Vec<usize>,
    /// `in_test[k]` is true when `toks[k]` sits inside a test-gated item.
    pub(crate) in_test: Vec<bool>,
}

impl<'a> Scan<'a> {
    pub(crate) fn new(toks: &'a [Tok]) -> Self {
        let sig: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let in_test = test_mask(toks, &sig);
        Scan { toks, sig, in_test }
    }

    pub(crate) fn sig_tok(&self, s: usize) -> Option<&Tok> {
        self.sig.get(s).map(|&i| &self.toks[i])
    }

    pub(crate) fn sig_text(&self, s: usize) -> &str {
        self.sig_tok(s).map_or("", |t| &t.text)
    }

    pub(crate) fn sig_kind(&self, s: usize) -> Option<TokKind> {
        self.sig_tok(s).map(|t| t.kind)
    }

    pub(crate) fn is_test(&self, s: usize) -> bool {
        self.sig.get(s).is_some_and(|&i| self.in_test[i])
    }
}

/// Mark tokens inside test-gated items: an attribute containing the
/// identifier `test` (and no `not`, so `#[cfg(not(test))]` stays live code)
/// masks the item it decorates through the matching close brace.
fn test_mask(toks: &[Tok], sig: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let text = |s: usize| -> &str { sig.get(s).map_or("", |&i| &toks[i].text) };
    let mut s = 0;
    while s < sig.len() {
        if !(text(s) == "#" && text(s + 1) == "[") {
            s += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let mut depth = 0usize;
        let mut u = s + 1;
        let mut has_test = false;
        let mut has_not = false;
        loop {
            match text(u) {
                "" => return mask, // unterminated; give up gracefully
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
            u += 1;
        }
        let after_attr = u + 1;
        if !has_test || has_not {
            s = after_attr;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut v = after_attr;
        while text(v) == "#" && text(v + 1) == "[" {
            let mut d = 0usize;
            v += 1;
            loop {
                match text(v) {
                    "" => return mask,
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                v += 1;
            }
            v += 1;
        }
        // The item runs to its first `{`'s matching `}` (or to `;`).
        let mut w = v;
        while !matches!(text(w), "{" | ";" | "") {
            w += 1;
        }
        let end_sig = if text(w) == "{" {
            let mut d = 0usize;
            loop {
                match text(w) {
                    "" => return mask,
                    "{" => d += 1,
                    "}" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                w += 1;
            }
            w
        } else if text(w) == ";" {
            w
        } else {
            sig.len() - 1
        };
        for &i in &sig[s..=end_sig.min(sig.len() - 1)] {
            mask[i] = true;
        }
        s = end_sig + 1;
    }
    mask
}

/// A parsed `lint: allow(rule, reason)` directive.
pub(crate) struct Allow {
    pub(crate) rule: String,
    /// Position of the directive comment itself (for stale reporting).
    pub(crate) line: u32,
    pub(crate) col: u32,
    /// Source lines this directive suppresses.
    pub(crate) lines: Vec<u32>,
    /// Set when the directive suppressed at least one live finding; a
    /// directive still false after every pass has run is stale.
    pub(crate) used: bool,
}

/// Parse suppression directives out of comment tokens. Malformed directives
/// (no reason) are reported as findings so a bare `allow` can't slip by.
pub(crate) fn collect_allows(
    toks: &[Tok],
    sig: &[usize],
    path: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        // A directive must be the comment's whole content; prose that merely
        // *mentions* `lint: allow(...)` (doc comments, this very file) is
        // not a suppression.
        let content = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim_start();
        if !content.starts_with("lint: allow(") {
            continue;
        }
        let body = &content["lint: allow(".len()..];
        let Some(close) = body.rfind(')') else {
            findings.push(Finding {
                rule: "allow-syntax",
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: "unterminated lint: allow(...) directive".to_string(),
            });
            continue;
        };
        let inner = &body[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        if rule.is_empty() || reason.is_empty() {
            findings.push(Finding {
                rule: "allow-syntax",
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: "lint: allow needs both a rule and a reason: \
                          `// lint: allow(<rule>, <reason>)`"
                    .to_string(),
            });
            continue;
        }
        // Covered lines: the directive's own line (trailing comment) and the
        // first code line after it (preceding comment).
        let mut lines = vec![t.line];
        if let Some(next) = sig.iter().map(|&i| toks[i].line).find(|&l| l > t.line) {
            lines.push(next);
        }
        allows.push(Allow {
            rule: rule.to_string(),
            line: t.line,
            col: t.col,
            lines,
            used: false,
        });
    }
    allows
}
