//! `lrb-lint` CLI: lint the workspace, or explore adversarial engine
//! schedules. Exit code 0 means every gate passed; 1 means findings (or
//! schedule divergence); 2 means usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lrb_lint::{analyze_workspace, report_json, rules, schedules};
use lrb_obs::{AtomicRecorder, NoopTracer};

const USAGE: &str = "\
lrb-lint — workspace invariant checker

USAGE:
  lrb-lint [--root DIR]                 lint every workspace .rs file
           [--report FILE]              also write the LINT_1.json report
  lrb-lint --schedules [--seeds A..B]   adversarial engine schedule gate
           [--threads N,N,...]
  lrb-lint --list-rules                 print the rule registry

A finding is suppressed by a same-line or preceding-line comment:
  // lint: allow(<rule>, <reason>)
A suppression that no longer fires is itself a finding (stale-suppression).
";

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    schedules: bool,
    seeds: std::ops::Range<u64>,
    threads: Vec<usize>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        report: None,
        schedules: false,
        seeds: 0..8,
        threads: vec![2, 4],
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--report" => {
                args.report = Some(PathBuf::from(it.next().ok_or("--report needs a file")?));
            }
            "--schedules" => args.schedules = true,
            "--seeds" | "--seed" => {
                let spec = it.next().ok_or("--seeds needs A..B or N")?;
                args.seeds = match spec.split_once("..") {
                    Some((a, b)) => {
                        let a = a.parse::<u64>().map_err(|e| format!("bad seed {a}: {e}"))?;
                        let b = b.parse::<u64>().map_err(|e| format!("bad seed {b}: {e}"))?;
                        a..b
                    }
                    None => {
                        let n = spec
                            .parse::<u64>()
                            .map_err(|e| format!("bad seed {spec}: {e}"))?;
                        n..n + 1
                    }
                };
            }
            "--threads" => {
                let spec = it.next().ok_or("--threads needs N,N,...")?;
                args.threads = spec
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad thread list {spec}: {e}"))?;
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lrb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (name, rationale) in rules::RULES {
            println!("{name}\n    {rationale}");
        }
        return ExitCode::SUCCESS;
    }

    if args.schedules {
        let report = schedules::explore(args.seeds.clone(), &args.threads);
        for failure in &report.failures {
            eprintln!("lrb-lint schedules: {failure}");
        }
        println!(
            "lrb-lint schedules: {} adversarial schedules (seeds {:?}, threads {:?}), \
             {} steals, {}",
            report.schedules_run,
            args.seeds,
            args.threads,
            report.total_steals,
            if report.passed() {
                "all bit-identical to the 1-thread reference"
            } else {
                "BIT-IDENTITY VIOLATED"
            }
        );
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let rec = AtomicRecorder::new();
    let analysis = match analyze_workspace(&args.root, &rec, &NoopTracer) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lrb-lint: walking {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    for f in &analysis.findings {
        println!("{f}");
    }
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report_json(&analysis)) {
            eprintln!("lrb-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let phase_ms = |name: &'static str| {
        rec.snapshot()
            .phases
            .iter()
            .find(|p| p.name == name)
            .map_or(0.0, |p| p.total_nanos as f64 / 1e6)
    };
    println!(
        "lrb-lint: {} files, {} fns, {} call edges ({} resolved / {} unresolved call \
         sites), {} suppressions; parse {:.1}ms graph {:.1}ms passes {:.1}ms",
        analysis.files,
        analysis.graph.functions,
        analysis.graph.edges,
        analysis.graph.resolved_calls,
        analysis.graph.unresolved_calls,
        analysis.suppressions.len(),
        phase_ms(lrb_obs::names::LINT_PARSE),
        phase_ms(lrb_obs::names::LINT_GRAPH),
        phase_ms(lrb_obs::names::LINT_PASS),
    );
    if analysis.findings.is_empty() {
        println!("lrb-lint: workspace clean ({} rules)", rules::RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("lrb-lint: {} finding(s)", analysis.findings.len());
        ExitCode::FAILURE
    }
}
