//! `lrb-lint` CLI: lint the workspace, or explore adversarial engine
//! schedules. Exit code 0 means every gate passed; 1 means findings (or
//! schedule divergence); 2 means usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lrb_lint::{lint_workspace, rules, schedules};

const USAGE: &str = "\
lrb-lint — workspace invariant checker

USAGE:
  lrb-lint [--root DIR]                 lint every workspace .rs file
  lrb-lint --schedules [--seeds A..B]   adversarial engine schedule gate
           [--threads N,N,...]
  lrb-lint --list-rules                 print the rule registry

A finding is suppressed by a same-line or preceding-line comment:
  // lint: allow(<rule>, <reason>)
";

struct Args {
    root: PathBuf,
    schedules: bool,
    seeds: std::ops::Range<u64>,
    threads: Vec<usize>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        schedules: false,
        seeds: 0..8,
        threads: vec![2, 4],
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--schedules" => args.schedules = true,
            "--seeds" | "--seed" => {
                let spec = it.next().ok_or("--seeds needs A..B or N")?;
                args.seeds = match spec.split_once("..") {
                    Some((a, b)) => {
                        let a = a.parse::<u64>().map_err(|e| format!("bad seed {a}: {e}"))?;
                        let b = b.parse::<u64>().map_err(|e| format!("bad seed {b}: {e}"))?;
                        a..b
                    }
                    None => {
                        let n = spec
                            .parse::<u64>()
                            .map_err(|e| format!("bad seed {spec}: {e}"))?;
                        n..n + 1
                    }
                };
            }
            "--threads" => {
                let spec = it.next().ok_or("--threads needs N,N,...")?;
                args.threads = spec
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad thread list {spec}: {e}"))?;
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lrb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (name, rationale) in rules::RULES {
            println!("{name}\n    {rationale}");
        }
        return ExitCode::SUCCESS;
    }

    if args.schedules {
        let report = schedules::explore(args.seeds.clone(), &args.threads);
        for failure in &report.failures {
            eprintln!("lrb-lint schedules: {failure}");
        }
        println!(
            "lrb-lint schedules: {} adversarial schedules (seeds {:?}, threads {:?}), \
             {} steals, {}",
            report.schedules_run,
            args.seeds,
            args.threads,
            report.total_steals,
            if report.passed() {
                "all bit-identical to the 1-thread reference"
            } else {
                "BIT-IDENTITY VIOLATED"
            }
        );
        return if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let findings = match lint_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lrb-lint: walking {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lrb-lint: workspace clean ({} rules)", rules::RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("lrb-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
