//! A hand-rolled item parser on top of the lexer: just enough Rust shape to
//! build a call graph — `fn`/`impl`/`trait`/`mod` items, call expressions,
//! `let` bindings, and the sink sites the semantic passes care about
//! (panics, clock/hash-collection reads, bare load arithmetic).
//!
//! This is deliberately *not* a Rust grammar. It tracks brace depth and an
//! item-context stack, recognizes item headers by keyword position, and
//! extracts per-function facts from body tokens. Macros other than the
//! panic family, generic method turbofish calls, and destructuring `let`
//! patterns are skipped; DESIGN.md §16 lists the resulting over- and
//! under-approximations.

use crate::lexer::TokKind;
use crate::scan::Scan;

/// Everything the graph builder needs from one source file.
pub struct FileFacts {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Owning crate in underscore form (`lrb_core`), or a synthetic name
    /// for root `src/` / `tests/` / `examples/` files.
    pub crate_name: String,
    /// `true` when the whole file is test/bench/example code.
    pub file_is_test: bool,
    /// Every function item in the file, in source order.
    pub fns: Vec<FnFact>,
    /// Workspace crate names (`lrb_*` identifiers) mentioned anywhere in
    /// the file; drives the crate-dependency filter during resolution.
    pub crate_mentions: Vec<String>,
}

/// One parsed function item.
pub struct FnFact {
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub qualifier: Option<String>,
    /// Module path inside the crate (file path segments + inline `mod`s).
    pub modules: Vec<String>,
    /// `pub` with no visibility restriction.
    pub is_pub: bool,
    /// Declared inside `impl Trait for Type` or a `trait` block: part of a
    /// trait surface, hence public API even without `pub`.
    pub in_trait: bool,
    pub is_test: bool,
    pub line: u32,
    pub col: u32,
    /// Named (non-`self`, non-pattern) parameters, in order.
    pub params: Vec<String>,
    pub calls: Vec<CallFact>,
    pub lets: Vec<LetFact>,
    /// `unwrap()`/`expect()`/`panic!`-family sites.
    pub panics: Vec<SiteFact>,
    /// `Instant::now`/`SystemTime::now`/`HashMap`/`HashSet` sites.
    pub nondet: Vec<SiteFact>,
    /// Bare, non-widened `+`/`-`/`*` sites with their operand idents.
    pub arith: Vec<ArithFact>,
    /// Function has a body (trait method signatures don't).
    pub has_body: bool,
}

/// How a call site names its callee.
pub enum CallKind {
    /// `helper(x)`
    Bare,
    /// `recv.helper(x)`
    Method,
    /// `seg::seg::helper(x)` — segments left of the final `::`.
    Path(Vec<String>),
}

/// One call expression inside a function body.
pub struct CallFact {
    pub kind: CallKind,
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// Per-argument-slot operand summary, for the arith dataflow pass.
    pub args: Vec<ArgFact>,
}

/// Identifiers and callee names appearing in one argument slot.
pub struct ArgFact {
    pub idents: Vec<String>,
    pub calls: Vec<String>,
}

/// `let [mut] name = rhs;` — identifiers and callee names in the rhs.
pub struct LetFact {
    pub name: String,
    pub idents: Vec<String>,
    pub calls: Vec<String>,
}

/// A flagged sink site with a display name like `unwrap()` or `panic!`.
pub struct SiteFact {
    pub what: String,
    pub line: u32,
    pub col: u32,
}

/// A bare arithmetic site: operator plus nearest operand idents.
pub struct ArithFact {
    pub op: String,
    pub operands: Vec<String>,
    pub line: u32,
    pub col: u32,
}

/// Keywords never treated as call or operand identifiers.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "as", "in", "for", "while", "loop", "move", "return", "unsafe", "ref",
    "mut", "dyn", "impl", "fn", "true", "false", "self", "Self", "crate", "super", "where",
    "break", "continue", "let", "const", "static", "pub", "use", "mod", "struct", "enum", "trait",
    "type", "async", "await", "box",
];

/// Crate name (underscore form) owning `path`.
pub fn crate_of(path: &str) -> String {
    let p = path.replace('\\', "/");
    if let Some(rest) = p.strip_prefix("crates/") {
        return rest.split('/').next().unwrap_or("").replace('-', "_");
    }
    if let Some(rest) = p.strip_prefix("vendor/") {
        return rest.split('/').next().unwrap_or("").replace('-', "_");
    }
    match p.split('/').next() {
        Some("src") => "workspace_root".to_string(),
        Some(top) => format!("workspace_{top}"),
        None => "workspace_misc".to_string(),
    }
}

/// Whole files that are test scaffolding: integration tests, examples,
/// benches. Their functions never act as roots, sinks, or call targets.
pub fn file_is_test(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.starts_with("tests/")
        || p.starts_with("examples/")
        || p.contains("/tests/")
        || p.contains("/examples/")
        || p.contains("/benches/")
}

/// Module path from the file location: path segments under `src/`, with
/// `lib`/`main`/`mod` stems contributing nothing.
fn file_modules(path: &str) -> Vec<String> {
    let p = path.replace('\\', "/");
    let rest = match p.find("/src/") {
        Some(at) => &p[at + "/src/".len()..],
        None => return Vec::new(),
    };
    let mut mods: Vec<String> = rest.split('/').map(|s| s.to_string()).collect();
    if let Some(last) = mods.pop() {
        let stem = last.trim_end_matches(".rs");
        if !matches!(stem, "lib" | "main" | "mod") {
            mods.push(stem.to_string());
        }
    }
    mods
}

/// What kind of block an entry on the context stack is.
enum Ctx {
    Mod {
        name: String,
        depth: usize,
    },
    Impl {
        qualifier: Option<String>,
        trait_like: bool,
        depth: usize,
    },
    Fn {
        idx: usize,
        depth: usize,
    },
}

/// Tokens that put a following `impl`/`fn` keyword in *type* position
/// (`-> impl Tracer`, `f: fn(u64) -> u64`), not item position.
const TYPE_POSITION: &[&str] = &[":", ",", "(", "&", "<", "->", "dyn", "|", "=", "+"];

/// Parse one file into call-graph facts. `scan` must come from the same
/// source the lexical rules saw, so both layers share one test mask.
pub(crate) fn parse_file(path: &str, scan: &Scan<'_>) -> FileFacts {
    let whole_file_test = file_is_test(path);
    let base_modules = file_modules(path);
    let mut facts = FileFacts {
        path: path.to_string(),
        crate_name: crate_of(path),
        file_is_test: whole_file_test,
        fns: Vec::new(),
        crate_mentions: Vec::new(),
    };

    let mut depth = 0usize;
    let mut ctx: Vec<Ctx> = Vec::new();
    let mut s = 0usize;
    let n = scan.sig.len();

    while s < n {
        let text = scan.sig_text(s).to_string();
        let kind = scan.sig_kind(s);

        if kind == Some(TokKind::Ident) && text.starts_with("lrb_") {
            facts.crate_mentions.push(text.clone());
        }

        match text.as_str() {
            "{" => {
                depth += 1;
                s += 1;
                continue;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                while ctx.last().is_some_and(|c| ctx_depth(c) > depth) {
                    ctx.pop();
                }
                s += 1;
                continue;
            }
            "mod" if kind == Some(TokKind::Ident) => {
                let name = scan.sig_text(s + 1).to_string();
                if scan.sig_text(s + 2) == "{" {
                    depth += 1;
                    ctx.push(Ctx::Mod { name, depth });
                    s += 3;
                } else {
                    s += 2;
                }
                continue;
            }
            "trait" if kind == Some(TokKind::Ident) => {
                // `trait Name [<...>] [: Bounds] { ... }` — default methods
                // inside are part of the trait's public surface.
                let name = scan.sig_text(s + 1).to_string();
                let mut u = s + 2;
                while !matches!(scan.sig_text(u), "{" | ";" | "") {
                    u += 1;
                }
                if scan.sig_text(u) == "{" {
                    depth += 1;
                    ctx.push(Ctx::Impl {
                        qualifier: Some(name),
                        trait_like: true,
                        depth,
                    });
                }
                s = u + 1;
                continue;
            }
            "impl"
                if kind == Some(TokKind::Ident)
                    && (s == 0 || !TYPE_POSITION.contains(&scan.sig_text(s - 1))) =>
            {
                if let Some(adv) = parse_impl_header(scan, s, &mut depth, &mut ctx) {
                    s = adv;
                    continue;
                }
                s += 1;
                continue;
            }
            "fn" if kind == Some(TokKind::Ident)
                && (s == 0 || !TYPE_POSITION.contains(&scan.sig_text(s - 1))) =>
            {
                if let Some(adv) = parse_fn_header(
                    scan,
                    s,
                    whole_file_test,
                    &base_modules,
                    &mut depth,
                    &mut ctx,
                    &mut facts.fns,
                ) {
                    s = adv;
                    continue;
                }
                s += 1;
                continue;
            }
            _ => {}
        }

        // Body facts, attributed to the innermost live function.
        let fn_idx = ctx.iter().rev().find_map(|c| match c {
            Ctx::Fn { idx, .. } => Some(*idx),
            _ => None,
        });
        if let Some(idx) = fn_idx {
            if !facts.fns[idx].is_test && !scan.is_test(s) {
                extract_body_fact(scan, s, &mut facts.fns[idx]);
            }
        }
        s += 1;
    }

    facts.crate_mentions.sort();
    facts.crate_mentions.dedup();
    facts
}

fn ctx_depth(c: &Ctx) -> usize {
    match c {
        Ctx::Mod { depth, .. } | Ctx::Impl { depth, .. } | Ctx::Fn { depth, .. } => *depth,
    }
}

/// Parse `impl [<...>] [Trait for] Type [where ...] {`, push an impl
/// context, and return the index just past the opening brace.
fn parse_impl_header(
    scan: &Scan<'_>,
    s: usize,
    depth: &mut usize,
    ctx: &mut Vec<Ctx>,
) -> Option<usize> {
    let mut u = s + 1;
    let mut angle = 0i32;
    let mut qualifier: Option<String> = None;
    let mut trait_like = false;
    loop {
        let t = scan.sig_text(u);
        match t {
            "" => return None,
            "{" if angle <= 0 => break,
            ";" if angle <= 0 => return Some(u + 1), // e.g. inside macros; bail
            "<" => angle += 1,
            ">" => angle -= 1,
            "<<" => angle += 2,
            ">>" => angle -= 2,
            "for" if angle <= 0 => {
                trait_like = true;
                qualifier = None;
            }
            "where" if angle <= 0 => {
                while !matches!(scan.sig_text(u), "{" | "") {
                    u += 1;
                }
                continue;
            }
            _ => {
                if angle <= 0 && scan.sig_kind(u) == Some(TokKind::Ident) && !KEYWORDS.contains(&t)
                {
                    qualifier = Some(t.to_string());
                }
            }
        }
        u += 1;
    }
    *depth += 1;
    ctx.push(Ctx::Impl {
        qualifier,
        trait_like,
        depth: *depth,
    });
    Some(u + 1)
}

/// Parse a `fn` item header, record its [`FnFact`], push a fn context when
/// it has a body, and return the index just past the header.
fn parse_fn_header(
    scan: &Scan<'_>,
    s: usize,
    whole_file_test: bool,
    base_modules: &[String],
    depth: &mut usize,
    ctx: &mut Vec<Ctx>,
    fns: &mut Vec<FnFact>,
) -> Option<usize> {
    let name_tok = scan.sig_tok(s + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let name = name_tok.text.trim_start_matches("r#").to_string();
    let (line, col) = (name_tok.line, name_tok.col);

    // Visibility: walk back over decoration tokens to an optional `pub`.
    let mut j = s;
    let mut is_pub = false;
    while j > 0 {
        j -= 1;
        let t = scan.sig_text(j);
        if matches!(
            t,
            "const" | "unsafe" | "async" | "extern" | ")" | "(" | "crate" | "super" | "in"
        ) || scan.sig_kind(j) == Some(TokKind::Str)
        {
            continue;
        }
        if t == "pub" {
            is_pub = scan.sig_text(j + 1) != "(";
        }
        break;
    }

    // Skip generics after the name.
    let mut u = s + 2;
    if scan.sig_text(u) == "<" {
        let mut angle = 0i32;
        loop {
            match scan.sig_text(u) {
                "" => return None,
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            }
            u += 1;
            if angle <= 0 {
                break;
            }
        }
    }

    // Parameter list.
    let mut params = Vec::new();
    if scan.sig_text(u) == "(" {
        let mut pd = 0usize;
        loop {
            let t = scan.sig_text(u);
            match t {
                "" => return None,
                "(" => pd += 1,
                ")" => {
                    pd -= 1;
                    if pd == 0 {
                        break;
                    }
                }
                _ => {
                    if pd == 1
                        && scan.sig_kind(u) == Some(TokKind::Ident)
                        && t != "self"
                        && t != "mut"
                        && scan.sig_text(u + 1) == ":"
                    {
                        params.push(t.to_string());
                    }
                }
            }
            u += 1;
        }
        u += 1;
    }

    // Return type / where clause up to the body or a `;` (trait signature).
    while !matches!(scan.sig_text(u), "{" | ";" | "") {
        u += 1;
    }
    let has_body = scan.sig_text(u) == "{";

    let (qualifier, in_trait) = ctx
        .iter()
        .rev()
        .find_map(|c| match c {
            Ctx::Impl {
                qualifier,
                trait_like,
                ..
            } => Some((qualifier.clone(), *trait_like)),
            Ctx::Fn { .. } => Some((None, false)), // nested fn: plain
            _ => None,
        })
        .unwrap_or((None, false));
    let mut modules = base_modules.to_vec();
    for c in ctx.iter() {
        if let Ctx::Mod { name, .. } = c {
            modules.push(name.clone());
        }
    }

    let idx = fns.len();
    fns.push(FnFact {
        name,
        qualifier,
        modules,
        is_pub,
        in_trait,
        is_test: whole_file_test || scan.is_test(s),
        line,
        col,
        params,
        calls: Vec::new(),
        lets: Vec::new(),
        panics: Vec::new(),
        nondet: Vec::new(),
        arith: Vec::new(),
        has_body,
    });

    if has_body {
        *depth += 1;
        ctx.push(Ctx::Fn { idx, depth: *depth });
        Some(u + 1)
    } else {
        Some(u + 1)
    }
}

/// Classify the token at `s` as a body fact for `f`, if it is one.
fn extract_body_fact(scan: &Scan<'_>, s: usize, f: &mut FnFact) {
    let Some(t) = scan.sig_tok(s) else { return };

    if t.kind == TokKind::Punct && matches!(t.text.as_str(), "+" | "-" | "*") {
        extract_arith(scan, s, f);
        return;
    }
    if t.kind != TokKind::Ident {
        return;
    }
    let name = t.text.as_str();

    if name == "let" {
        extract_let(scan, s, f);
        return;
    }

    // Panic sites.
    let is_panic_method = matches!(name, "unwrap" | "expect")
        && s > 0
        && scan.sig_text(s - 1) == "."
        && scan.sig_text(s + 1) == "(";
    let is_panic_macro = matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
        && scan.sig_text(s + 1) == "!";
    if is_panic_method || is_panic_macro {
        f.panics.push(SiteFact {
            what: format!("{name}{}", if is_panic_macro { "!" } else { "()" }),
            line: t.line,
            col: t.col,
        });
    }

    // Nondeterminism sources.
    match name {
        "HashMap" | "HashSet" => f.nondet.push(SiteFact {
            what: name.to_string(),
            line: t.line,
            col: t.col,
        }),
        "Instant" | "SystemTime"
            if scan.sig_text(s + 1) == "::" && scan.sig_text(s + 2) == "now" =>
        {
            f.nondet.push(SiteFact {
                what: format!("{name}::now()"),
                line: t.line,
                col: t.col,
            });
        }
        _ => {}
    }

    // Call expressions: `name(`, `.name(`, `path::name(`.
    if scan.sig_text(s + 1) == "(" && !KEYWORDS.contains(&name) {
        let kind = if s > 0 && scan.sig_text(s - 1) == "." {
            CallKind::Method
        } else if s > 0 && scan.sig_text(s - 1) == "::" {
            let mut segs = Vec::new();
            let mut j = s;
            while j >= 2
                && scan.sig_text(j - 1) == "::"
                && scan.sig_kind(j - 2) == Some(TokKind::Ident)
            {
                segs.push(scan.sig_text(j - 2).to_string());
                j -= 2;
            }
            segs.reverse();
            CallKind::Path(segs)
        } else {
            CallKind::Bare
        };
        f.calls.push(CallFact {
            kind,
            name: name.to_string(),
            line: t.line,
            col: t.col,
            args: extract_args(scan, s + 1),
        });
    }
}

/// Summarize the argument slots of a call whose `(` sits at `open`.
fn extract_args(scan: &Scan<'_>, open: usize) -> Vec<ArgFact> {
    let mut args = Vec::new();
    let mut cur = ArgFact {
        idents: Vec::new(),
        calls: Vec::new(),
    };
    let mut pd = 0usize;
    let mut saw_any = false;
    let mut u = open;
    // Bounded scan: argument lists longer than this are beyond what the
    // dataflow pass needs.
    let limit = open + 300;
    while u < limit {
        let t = scan.sig_text(u);
        match t {
            "" => break,
            "(" | "[" | "{" => pd += 1,
            ")" | "]" | "}" => {
                pd -= 1;
                if pd == 0 {
                    break;
                }
            }
            "," if pd == 1 => {
                args.push(cur);
                cur = ArgFact {
                    idents: Vec::new(),
                    calls: Vec::new(),
                };
                u += 1;
                continue;
            }
            _ => {
                if pd >= 1 && scan.sig_kind(u) == Some(TokKind::Ident) && !KEYWORDS.contains(&t) {
                    saw_any = true;
                    if scan.sig_text(u + 1) == "(" {
                        cur.calls.push(t.to_string());
                    } else {
                        cur.idents.push(t.to_string());
                    }
                }
            }
        }
        u += 1;
    }
    if saw_any || !args.is_empty() {
        args.push(cur);
    }
    args
}

/// Extract a simple `let [mut] name [: T] = rhs;` binding.
fn extract_let(scan: &Scan<'_>, s: usize, f: &mut FnFact) {
    let mut j = s + 1;
    if scan.sig_text(j) == "mut" {
        j += 1;
    }
    let Some(name_tok) = scan.sig_tok(j) else {
        return;
    };
    if name_tok.kind != TokKind::Ident || KEYWORDS.contains(&name_tok.text.as_str()) {
        return; // destructuring / ref patterns: skipped
    }
    let name = name_tok.text.clone();

    // Find the `=` at bracket depth zero (generic args carry no bare `=`).
    let mut k = j + 1;
    let mut d = 0i32;
    let eq = loop {
        let t = scan.sig_text(k);
        match t {
            "" | ";" => return, // `let x: T;` — no initializer
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            "=" if d == 0 => break k,
            _ => {}
        }
        if k > s + 80 {
            return;
        }
        k += 1;
    };

    // Rhs up to the statement's `;` at depth zero.
    let mut idents = Vec::new();
    let mut calls = Vec::new();
    let mut u = eq + 1;
    let mut rd = 0i32;
    while u < eq + 200 {
        let t = scan.sig_text(u);
        match t {
            "" => break,
            ";" if rd == 0 => break,
            "(" | "[" | "{" => rd += 1,
            ")" | "]" | "}" => {
                rd -= 1;
                if rd < 0 {
                    break;
                }
            }
            _ => {
                if scan.sig_kind(u) == Some(TokKind::Ident) && !KEYWORDS.contains(&t) {
                    if scan.sig_text(u + 1) == "(" {
                        calls.push(t.to_string());
                    } else {
                        idents.push(t.to_string());
                    }
                }
            }
        }
        u += 1;
    }
    f.lets.push(LetFact {
        name,
        idents,
        calls,
    });
}

/// Record a binary, non-widened `+`/`-`/`*` with its nearest operand idents.
fn extract_arith(scan: &Scan<'_>, s: usize, f: &mut FnFact) {
    let Some(t) = scan.sig_tok(s) else { return };
    let binary = s > 0
        && scan.sig_tok(s - 1).is_some_and(|p| {
            matches!(p.kind, TokKind::Ident | TokKind::Num) || matches!(p.text.as_str(), ")" | "]")
        });
    if !binary {
        return;
    }
    let widened = (s.saturating_sub(5)..s)
        .chain(s + 1..(s + 6).min(scan.sig.len()))
        .any(|k| matches!(scan.sig_text(k), "u128" | "i128" | "f64" | "f32"));
    if widened {
        return;
    }
    let mut operands = Vec::new();
    if let Some(p) = (s.saturating_sub(3)..s)
        .rev()
        .filter_map(|k| scan.sig_tok(k))
        .find(|t| t.kind == TokKind::Ident)
    {
        operands.push(p.text.clone());
    }
    if let Some(nx) = (s + 1..(s + 4).min(scan.sig.len()))
        .filter_map(|k| scan.sig_tok(k))
        .find(|t| t.kind == TokKind::Ident)
    {
        operands.push(nx.text.clone());
    }
    f.arith.push(ArithFact {
        op: t.text.clone(),
        operands,
        line: t.line,
        col: t.col,
    });
}
