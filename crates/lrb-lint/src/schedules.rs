//! Deterministic concurrency-schedule exploration for `lrb-engine`.
//!
//! The engine promises batch results bit-identical for any thread count and
//! any claim order. This module is the cheap loom-style gate behind that
//! promise: it replays seeded batches under pathological scheduler shims —
//! forced steal storms, single-slot stripe layouts, seeded yield/sleep
//! points — and asserts every adversarial run reproduces the single-thread
//! reference bit for bit.

use std::ops::Range;

use lrb_engine::schedule::AdversarialShim;
use lrb_engine::{solve_batch, solve_batch_shimmed, BatchItem, BatchSolver, EngineConfig};
use lrb_instances::GeneratorConfig;

use lrb_core::model::Budget;

/// The perturbation modes explored per seed.
const MODES: &[(&str, bool, bool, bool)] = &[
    // (name, storm, single_slot, jitter)
    ("storm", true, false, false),
    ("single-slot", false, true, false),
    ("jitter", false, false, true),
    ("storm+single-slot+jitter", true, true, true),
];

const SOLVERS: &[BatchSolver] = &[
    BatchSolver::Greedy,
    BatchSolver::MPartition,
    BatchSolver::CostPartition,
];

/// Summary of one exploration run.
#[derive(Debug)]
pub struct ScheduleReport {
    /// Adversarial schedules executed (seed × mode × thread count × solver).
    pub schedules_run: usize,
    /// Steals observed across all adversarial runs — proof the storm modes
    /// actually exercised the racy path.
    pub total_steals: u64,
    /// Bit-identity violations, empty on success.
    pub failures: Vec<String>,
}

impl ScheduleReport {
    /// True when every schedule reproduced the reference bit for bit and
    /// the exploration was not vacuous.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A seeded mixed batch: varied multisets, placements, and both budget
/// kinds, so every solver path (including the ladder cache) is exercised.
fn batch(seed: u64) -> Vec<BatchItem> {
    (0..24)
        .map(|i| {
            let cfg = GeneratorConfig::uniform(16 + (i % 3) * 4, 3 + i % 3);
            let instance = cfg.generate(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let budget = if i % 4 == 3 {
                Budget::Cost(2 + i as u64 % 7)
            } else {
                Budget::Moves(2 + i % 5)
            };
            BatchItem { instance, budget }
        })
        .collect()
}

/// Run the exploration for every seed in `seeds` at the given adversarial
/// thread counts. Each (seed, mode, threads, solver) tuple is one schedule;
/// all must match the single-thread reference exactly.
pub fn explore(seeds: Range<u64>, threads: &[usize]) -> ScheduleReport {
    let mut report = ScheduleReport {
        schedules_run: 0,
        total_steals: 0,
        failures: Vec::new(),
    };
    for seed in seeds {
        let items = batch(seed);
        for &solver in SOLVERS {
            let reference = solve_batch(&items, solver, &EngineConfig::with_threads(1));
            for &(mode, storm, single_slot, jitter) in MODES {
                for &t in threads {
                    let shim = AdversarialShim::new(seed, storm, single_slot, jitter);
                    let adv =
                        solve_batch_shimmed(&items, solver, &EngineConfig::with_threads(t), &shim);
                    report.schedules_run += 1;
                    report.total_steals += adv.steals;
                    if adv.outcomes != reference.outcomes {
                        let diverged = reference
                            .outcomes
                            .iter()
                            .zip(&adv.outcomes)
                            .position(|(a, b)| a != b);
                        report.failures.push(format!(
                            "seed {seed} mode {mode} threads {t} solver {solver:?}: \
                             outcomes diverge from the 1-thread reference (first at \
                             item {diverged:?})"
                        ));
                    }
                }
            }
        }
    }
    if report.failures.is_empty() && report.total_steals == 0 {
        report
            .failures
            .push("exploration was vacuous: no schedule produced a single steal".to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_exploration_passes_and_steals() {
        let report = explore(0..2, &[2]);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.schedules_run, 2 * MODES.len() * SOLVERS.len());
        assert!(report.total_steals > 0);
    }
}
