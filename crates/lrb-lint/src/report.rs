//! Schema-pinned `LINT_1.json` emission.
//!
//! Same discipline as BENCH/HETERO/COMPETE: the exact key sets below are
//! mirrored as consts in `lrb-cli/src/report.rs` (the producer-side pin for
//! every other report; here the *consumer* side) and in
//! [`crate::rules::GOLDEN_KEY_SETS`], so either side drifting alone fails
//! the lint gate. The JSON is hand-rolled and deterministic — keys in a
//! fixed order, entries in (path, line, col) order, no timestamps — so
//! check.sh can byte-diff a fresh run against the committed artifact.

use crate::Analysis;

/// Version of the LINT report schema (`LINT_1.json`).
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// Top-level keys of the LINT report.
pub const LINT_TOP_KEYS: &[&str] = &[
    "call_graph",
    "files",
    "findings",
    "rules",
    "schema_version",
    "suppressions",
];

/// Keys of the `call_graph` stats block.
pub const LINT_GRAPH_KEYS: &[&str] = &["edges", "functions", "resolved_calls", "unresolved_calls"];

/// Keys of each `rules[]` per-rule counter entry.
pub const LINT_RULE_KEYS: &[&str] = &["findings", "rule"];

/// Keys of each `findings[]` entry.
pub const LINT_FINDING_KEYS: &[&str] = &["col", "line", "message", "path", "rule"];

/// Keys of the `suppressions` inventory block.
pub const LINT_SUPPRESSION_KEYS: &[&str] = &["sites", "stale", "total"];

/// Keys of each `suppressions.sites[]` entry.
pub const LINT_SITE_KEYS: &[&str] = &["line", "path", "rule", "used"];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize an [`Analysis`] as the `LINT_1.json` document.
pub fn report_json(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {LINT_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"files\": {},\n", a.files));

    out.push_str("  \"call_graph\": {\n");
    out.push_str(&format!("    \"edges\": {},\n", a.graph.edges));
    out.push_str(&format!("    \"functions\": {},\n", a.graph.functions));
    out.push_str(&format!(
        "    \"resolved_calls\": {},\n",
        a.graph.resolved_calls
    ));
    out.push_str(&format!(
        "    \"unresolved_calls\": {}\n",
        a.graph.unresolved_calls
    ));
    out.push_str("  },\n");

    out.push_str("  \"rules\": [\n");
    let rules = crate::rules::RULES;
    for (k, (name, _)) in rules.iter().enumerate() {
        let count = a.findings.iter().filter(|f| f.rule == *name).count();
        out.push_str(&format!(
            "    {{ \"rule\": \"{}\", \"findings\": {} }}{}\n",
            esc(name),
            count,
            if k + 1 < rules.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");

    if a.findings.is_empty() {
        out.push_str("  \"findings\": [],\n");
    } else {
        out.push_str("  \"findings\": [\n");
        for (k, f) in a.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"message\": \"{}\" }}{}\n",
                esc(f.rule),
                esc(&f.path),
                f.line,
                f.col,
                esc(&f.message),
                if k + 1 < a.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
    }

    let stale = a.suppressions.iter().filter(|s| !s.used).count();
    out.push_str("  \"suppressions\": {\n");
    out.push_str(&format!("    \"total\": {},\n", a.suppressions.len()));
    out.push_str(&format!("    \"stale\": {stale},\n"));
    if a.suppressions.is_empty() {
        out.push_str("    \"sites\": []\n");
    } else {
        out.push_str("    \"sites\": [\n");
        for (k, s) in a.suppressions.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"used\": {} }}{}\n",
                esc(&s.rule),
                esc(&s.path),
                s.line,
                s.used,
                if k + 1 < a.suppressions.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("    ]\n");
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}
