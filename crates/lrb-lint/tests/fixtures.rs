//! Each rule is proven live against a fixture that must trip it, with the
//! exact line/column pinned, and proven suppressible via an allow
//! directive inside the same fixture. The fixtures live under
//! `fixtures/`, which the workspace walker skips, and are linted under
//! *virtual* paths so rule scoping (solver crate, model file, report file)
//! is exercised without touching real sources.

use lrb_lint::rules::{lint_source, Finding};

fn lint(fixture: &str, virtual_path: &str) -> Vec<Finding> {
    lint_source(virtual_path, fixture)
}

fn triples(findings: &[Finding]) -> Vec<(&'static str, u32, u32)> {
    findings.iter().map(|f| (f.rule, f.line, f.col)).collect()
}

#[test]
fn nondeterminism_fixture_trips_and_suppresses() {
    let findings = lint(
        include_str!("../fixtures/nondeterminism.rs"),
        "crates/lrb-core/src/fixture.rs",
    );
    // Three HashMap mentions and one Instant::now; the allow-annotated
    // Instant::now at the bottom of the fixture must NOT appear.
    assert_eq!(
        triples(&findings),
        vec![
            ("no-nondeterminism", 4, 23),
            ("no-nondeterminism", 7, 30),
            ("no-nondeterminism", 8, 19),
            ("no-nondeterminism", 8, 39),
        ],
        "{findings:#?}"
    );
}

#[test]
fn nondeterminism_fixture_goes_stale_outside_solver_crates() {
    // Outside the rule's scope the clock reads are legal — which turns the
    // fixture's embedded allow into a stale-suppression hard error.
    let findings = lint(
        include_str!("../fixtures/nondeterminism.rs"),
        "crates/lrb-cli/src/fixture.rs",
    );
    assert_eq!(
        triples(&findings),
        vec![("stale-suppression", 14, 5)],
        "{findings:#?}"
    );
}

#[test]
fn panic_fixture_trips_outside_tests_only() {
    let findings = lint(
        include_str!("../fixtures/panic.rs"),
        "crates/lrb-core/src/fixture.rs",
    );
    // unwrap, expect, unreachable! in live code; the unwrap inside
    // `#[cfg(test)] mod tests` is masked.
    assert_eq!(
        triples(&findings),
        vec![
            ("no-panic-core", 5, 17),
            ("no-panic-core", 9, 16),
            ("no-panic-core", 13, 5),
        ],
        "{findings:#?}"
    );
}

#[test]
fn panic_rule_covers_the_serve_daemon() {
    // The same fixture trips under a virtual lrb-serve path (the daemon
    // must never abort) and stays silent in crates outside the rule's
    // scope.
    let findings = lint(
        include_str!("../fixtures/panic.rs"),
        "crates/lrb-serve/src/fixture.rs",
    );
    assert_eq!(
        triples(&findings),
        vec![
            ("no-panic-core", 5, 17),
            ("no-panic-core", 9, 16),
            ("no-panic-core", 13, 5),
        ],
        "{findings:#?}"
    );
    let findings = lint(
        include_str!("../fixtures/panic.rs"),
        "crates/lrb-harness/src/fixture.rs",
    );
    assert!(
        !findings.iter().any(|f| f.rule == "no-panic-core"),
        "{findings:#?}"
    );
}

#[test]
fn checked_arith_fixture_trips_once() {
    let findings = lint(
        include_str!("../fixtures/checked_arith.rs"),
        "crates/lrb-core/src/model.rs",
    );
    // `load + size` trips; the u128-widened product and the allow-annotated
    // sum do not.
    assert_eq!(
        triples(&findings),
        vec![("checked-arith", 5, 10)],
        "{findings:#?}"
    );
}

#[test]
fn checked_arith_scope_covers_the_whole_core_crate() {
    // The semantic layer widened the rule from model.rs/bounds.rs to every
    // lrb-core file — the flow pass proves load-typedness crate-wide, so
    // the lexical scope matches.
    let findings = lint(
        include_str!("../fixtures/checked_arith.rs"),
        "crates/lrb-core/src/greedy.rs",
    );
    assert_eq!(
        triples(&findings),
        vec![("checked-arith", 5, 10)],
        "{findings:#?}"
    );
    // Outside the solver crate the rule is silent, so the embedded allow
    // is stale.
    let findings = lint(
        include_str!("../fixtures/checked_arith.rs"),
        "crates/lrb-harness/src/fixture.rs",
    );
    assert_eq!(
        triples(&findings),
        vec![("stale-suppression", 13, 5)],
        "{findings:#?}"
    );
}

#[test]
fn obs_names_fixture_flags_inline_literal_only() {
    let findings = lint(
        include_str!("../fixtures/obs_names.rs"),
        "crates/lrb-sim/src/fixture.rs",
    );
    // The inline "sim.epochz" Recorder literal and the "sim.runz" Tracer
    // span literal trip; the names:: calls are the sanctioned form.
    assert_eq!(
        triples(&findings),
        vec![("obs-name-registry", 7, 14), ("obs-name-registry", 12, 26),],
        "{findings:#?}"
    );
    assert!(findings[0].message.contains("sim.epochz"));
    assert!(findings[1].message.contains("sim.runz"));
}

#[test]
fn unsafe_fixture_requires_safety_comment() {
    let findings = lint(
        include_str!("../fixtures/unsafe_audit.rs"),
        "crates/lrb-sim/src/fixture.rs",
    );
    // The undocumented block trips; the `// SAFETY:`-prefixed one passes.
    assert_eq!(
        triples(&findings),
        vec![("unsafe-audit", 5, 5)],
        "{findings:#?}"
    );
}

#[test]
fn schema_fixture_reports_drift_and_missing_consts() {
    let findings = lint(
        include_str!("../fixtures/schema_keys.rs"),
        "crates/lrb-cli/src/report.rs",
    );
    let drift: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("drifted"))
        .collect();
    assert_eq!(drift.len(), 1, "{findings:#?}");
    assert_eq!((drift[0].line, drift[0].col), (4, 11));
    assert!(drift[0].message.contains("missing [\"thread_curve\"]"));
    assert!(drift[0].message.contains("unexpected [\"surprise_key\"]"));
    // The fixture defines only BENCH_TOP_KEYS, so every other pinned
    // const (bench/chaos/online/hetero/compete, the trace sets, the serve
    // snapshot sets, and the six LINT report sets) is reported missing.
    let missing = findings
        .iter()
        .filter(|f| f.message.contains("is missing from report.rs"))
        .count();
    assert_eq!(
        missing,
        lrb_lint::rules::GOLDEN_KEY_SETS.len() - 1,
        "{findings:#?}"
    );
}

#[test]
fn clean_fixture_passes_strictest_scope() {
    let findings = lint(
        include_str!("../fixtures/clean.rs"),
        "crates/lrb-core/src/model.rs",
    );
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn panic_reachability_crosses_crates_to_the_root_cause() {
    // A public engine API reaches an unwrap through a three-deep chain
    // ending in a support crate the lexical rule does not own; the finding
    // lands at the sink with the full chain spelled out. The second chain
    // ends in an allow at the root-cause site, which eats the finding.
    let findings = lrb_lint::lint_sources(&[
        (
            "crates/lrb-engine/src/fixture.rs",
            include_str!("../fixtures/panic_reach.rs"),
        ),
        (
            "crates/lrb-support/src/lib.rs",
            include_str!("../fixtures/panic_sink.rs"),
        ),
    ]);
    assert_eq!(
        triples(&findings),
        vec![("no-panic-core", 10, 22)],
        "{findings:#?}"
    );
    assert_eq!(findings[0].path, "crates/lrb-support/src/lib.rs");
    assert!(
        findings[0]
            .message
            .contains("`solve_public` -> `step_one` -> `step_two` -> `step_three` -> unwrap()"),
        "{}",
        findings[0].message
    );
}

#[test]
fn nondeterminism_taint_flows_through_helpers() {
    // The clock read sits in a helper crate; only the taint pass connects
    // the public engine API to it.
    let findings = lrb_lint::lint_sources(&[
        (
            "crates/lrb-engine/src/fixture.rs",
            include_str!("../fixtures/nondet_caller.rs"),
        ),
        (
            "crates/lrb-support/src/lib.rs",
            include_str!("../fixtures/nondet_taint.rs"),
        ),
    ]);
    assert_eq!(
        triples(&findings),
        vec![("no-nondeterminism", 6, 16)],
        "{findings:#?}"
    );
    assert!(
        findings[0]
            .message
            .contains("`epoch_seed` -> `wall_clock_nanos`"),
        "{}",
        findings[0].message
    );
}

#[test]
fn arith_flow_tracks_loads_through_lets_and_call_slots() {
    // `load` flows through a let binding named `w` into `helper`'s
    // `amount` parameter; the bare `+` there is flagged even though no
    // operand is loadish-named. The u128-widened product is exempt, and
    // the allow-annotated sum is eaten (proving the allow is live, not
    // stale).
    let findings = lrb_lint::lint_sources(&[(
        "crates/lrb-core/src/flow.rs",
        include_str!("../fixtures/arith_flow.rs"),
    )]);
    assert_eq!(
        triples(&findings),
        vec![("checked-arith", 10, 12)],
        "{findings:#?}"
    );
    assert!(
        findings[0].message.contains("load-typed by dataflow"),
        "{}",
        findings[0].message
    );
}

#[test]
fn stale_and_malformed_suppressions_are_hard_errors() {
    let findings = lrb_lint::lint_sources(&[(
        "crates/lrb-harness/src/fixture.rs",
        include_str!("../fixtures/stale_allow.rs"),
    )]);
    assert_eq!(
        triples(&findings),
        vec![("stale-suppression", 5, 5), ("allow-syntax", 10, 5)],
        "{findings:#?}"
    );
}

#[test]
fn real_workspace_is_clean() {
    // The repo itself must satisfy its own linter; run from the crate dir,
    // the workspace root is two levels up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let analysis = lrb_lint::analyze_workspace(&root, &lrb_obs::NoopRecorder, &lrb_obs::NoopTracer)
        .expect("workspace walk succeeds");
    assert!(analysis.findings.is_empty(), "{:#?}", analysis.findings);
    // Vacuity guards: an empty call graph would make every reachability
    // pass trivially clean. The real workspace has thousands of resolved
    // edges and a live suppression inventory.
    assert!(
        analysis.graph.functions > 500,
        "suspiciously few functions: {:?}",
        analysis.graph
    );
    assert!(
        analysis.graph.edges > 1000,
        "suspiciously few call edges: {:?}",
        analysis.graph
    );
    assert!(
        !analysis.suppressions.is_empty() && analysis.suppressions.iter().all(|s| s.used),
        "every committed allow must be live: {:#?}",
        analysis.suppressions
    );
}
