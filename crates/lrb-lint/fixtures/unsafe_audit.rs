//! Fixture: an `unsafe` block with no preceding `// SAFETY:` comment.
//! Linted under the virtual path `crates/lrb-sim/src/fixture.rs`.

pub fn undocumented(xs: &[u64]) -> u64 {
    unsafe { *xs.get_unchecked(0) }
}

pub fn documented(xs: &[u64]) -> u64 {
    // SAFETY: callers guarantee xs is non-empty.
    unsafe { *xs.get_unchecked(0) }
}
