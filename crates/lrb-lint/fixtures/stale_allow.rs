//! Fixture: suppressions that suppress nothing, or are malformed, are
//! themselves hard errors.

pub fn tidy(x: u64) -> u64 {
    // lint: allow(no-panic-core, there has been nothing to suppress here for ages)
    x.saturating_add(1)
}

pub fn sloppy(x: u64) -> u64 {
    // lint: allow(checked-arith)
    x
}
