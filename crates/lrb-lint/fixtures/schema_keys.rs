//! Fixture: a report key-set const that drifted from the pinned schema.
//! Linted under the virtual path `crates/lrb-cli/src/report.rs`.

pub const BENCH_TOP_KEYS: &[&str] = &[
    "available_parallelism",
    "repeats",
    "rungs",
    "scenario",
    "schema_version",
    "seed",
    "solver",
    "surprise_key",
];
