//! Fixture: a public engine API whose result depends on a clock read two
//! hops away; only the taint pass can connect the dots.

pub fn epoch_seed() -> u64 {
    lrb_support::wall_clock_nanos()
}
