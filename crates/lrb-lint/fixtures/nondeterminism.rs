//! Fixture: nondeterministic constructs inside a solver crate.
//! Linted under the virtual path `crates/lrb-core/src/fixture.rs`.

use std::collections::HashMap;

pub fn leaky_timing() -> u64 {
    let started = std::time::Instant::now();
    let mut memo: HashMap<u64, u64> = HashMap::new();
    memo.insert(1, 2);
    started.elapsed().as_nanos() as u64
}

pub fn suppressed_timing() -> std::time::Instant {
    // lint: allow(no-nondeterminism, fixture demonstrates a justified clock read)
    std::time::Instant::now()
}
