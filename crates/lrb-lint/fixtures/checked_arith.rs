//! Fixture: bare arithmetic on load-typed values in a bounds/model file.
//! Linted under the virtual path `crates/lrb-core/src/model.rs`.

pub fn total_load(load: u64, size: u64) -> u64 {
    load + size
}

pub fn widened_is_fine(load: u64, size: u64) -> u128 {
    (load as u128) * (size as u128)
}

pub fn suppressed(load: u64, size: u64) -> u64 {
    // lint: allow(checked-arith, fixture demonstrates a proven-in-range sum)
    load + size
}
