//! Fixture: a clock read hidden behind a helper in a crate the lexical
//! nondeterminism rule does not own. Linted as a virtual workspace
//! together with `nondet_caller.rs`.

pub fn wall_clock_nanos() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
