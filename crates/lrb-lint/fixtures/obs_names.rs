//! Fixture: an inline metric-name literal handed to a Recorder call.
//! Linted under the virtual path `crates/lrb-sim/src/fixture.rs`.

use lrb_obs::{names, Recorder};

pub fn emit<R: Recorder>(rec: &R) {
    rec.incr("sim.epochz", 1);
    rec.incr(names::SIM_EPOCHS, 1);
}
