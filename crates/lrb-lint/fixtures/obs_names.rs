//! Fixture: an inline metric-name literal handed to a Recorder call.
//! Linted under the virtual path `crates/lrb-sim/src/fixture.rs`.

use lrb_obs::{names, Recorder, Tracer};

pub fn emit<R: Recorder>(rec: &R) {
    rec.incr("sim.epochz", 1);
    rec.incr(names::SIM_EPOCHS, 1);
}

pub fn trace<T: Tracer>(tracer: &T) {
    let _g = tracer.span("sim.runz");
    tracer.instant(names::SIM_RUN, 0, false);
}
