//! Fixture: load-typedness flowing through let bindings and call-argument
//! slots under innocent names the lexical rule cannot see.

pub fn rebalance(load: u64, size: u64) -> u64 {
    let w = load.saturating_add(size);
    helper(w)
}

fn helper(amount: u64) -> u64 {
    amount + 1
}

pub fn widened(load: u64) -> u128 {
    let w = load as u128;
    w * 2
}

pub fn suppressed(load: u64) -> u64 {
    let w = load.min(10);
    // lint: allow(checked-arith, fixture demonstrates a proven-in-range sum)
    w + 1
}
