//! Fixture: panicking constructs in non-test lrb-core code.
//! Linted under the virtual path `crates/lrb-core/src/fixture.rs`.

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn last(xs: &[u64]) -> u64 {
    *xs.last().expect("non-empty")
}

pub fn never() -> ! {
    unreachable!("fixture")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let xs = [1u64];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
