//! Fixture: a public engine API reaching a panic through a three-deep
//! cross-crate call chain. Linted as a virtual workspace together with
//! `panic_sink.rs` (the support crate holding the sink).

pub fn solve_public(x: u64) -> u64 {
    step_one(x)
}

fn step_one(x: u64) -> u64 {
    lrb_support::step_two(x)
}

pub fn solve_quiet(x: u64) -> u64 {
    lrb_support::quiet_sink(x)
}
