//! Fixture: code that satisfies every rule under the strictest scope.
//! Linted under the virtual path `crates/lrb-core/src/model.rs`.

use std::collections::BTreeMap;

pub fn total_load(load: u64, size: u64) -> Option<u64> {
    load.checked_add(size)
}

pub fn index(pairs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
    pairs.iter().copied().collect()
}

pub fn first(xs: &[u64]) -> Option<u64> {
    xs.first().copied()
}
