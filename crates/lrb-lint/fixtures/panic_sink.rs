//! Fixture: the support-crate tail of the `panic_reach.rs` chain. The
//! sink crate is outside the lexical no-panic scope, so only the
//! reachability pass can see these sites.

pub fn step_two(x: u64) -> u64 {
    step_three(x)
}

fn step_three(x: u64) -> u64 {
    x.checked_add(1).unwrap()
}

pub fn quiet_sink(x: u64) -> u64 {
    // lint: allow(no-panic-core, fixture demonstrates a root-cause suppression)
    x.checked_add(1).unwrap()
}
