//! Adversarial and random-order arrival generators for the competitive
//! lab.
//!
//! Classical competitive analysis distinguishes arrival models (Im,
//! Karlin, et al. survey the spectrum in arXiv:2405.07949):
//!
//! * **Random order** — a fixed job multiset presented in a seeded
//!   uniformly random permutation. The multiset (and therefore the final
//!   `OPT`) is permutation-invariant, which the metamorphic suite pins.
//! * **Greedy punisher** — the Graham lower-bound stream against
//!   least-loaded placement: `m·(m−1)` small jobs that spread perfectly,
//!   then one job of size `m·unit` that lands on an already-loaded server,
//!   forcing a `2 − 1/m` ratio on any policy that cannot migrate.
//! * **Adaptive** — reads the *current* loads before each arrival and
//!   lands `max(spread, 1)` units on the least-loaded server, constantly
//!   re-leveling so that banked migration budget is never enough to undo
//!   the final oversized arrival.
//!
//! Every generator implements [`Adversary`]: the driver feeds back the
//! rebalancer's live per-server loads before each arrival, which is what
//! lets the adaptive streams target the placement rule rather than a fixed
//! schedule. Placement feedback changes nothing for the oblivious models —
//! random order ignores it by construction.
//!
//! Arrivals carry `cost = size`, so a `Budget::Cost` bill measures
//! migration *volume* — the unit the migration-factor policies
//! ([`lrb_core::online::ProportionalBank`], [`lrb_core::online::MaackBank`])
//! certify against. The Poisson churn model stays in
//! [`crate::online::OnlineWorkload`]; these generators cover the
//! worst-case end of the spectrum.

use lrb_core::model::Job;
use lrb_core::online::{Event, JobKey};
use lrb_instances::SizeDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arrival generator that may adapt to the rebalancer's current loads.
pub trait Adversary {
    /// Stable generator name for reports.
    fn name(&self) -> &'static str;

    /// The next arrival given the current per-server loads, or `None` when
    /// the stream is exhausted. Keys are fresh and monotonically
    /// increasing; jobs carry `cost = size`.
    fn next(&mut self, loads: &[u64]) -> Option<Event>;
}

/// Index of the least-loaded server (lowest index wins ties, matching the
/// evacuation rule in [`crate::online`]).
fn least_loaded(loads: &[u64]) -> usize {
    let mut arg = 0usize;
    for (p, &l) in loads.iter().enumerate() {
        if l < loads[arg] {
            arg = p;
        }
    }
    arg
}

/// A fixed multiset presented in a seeded uniformly random permutation,
/// each arrival placed on a seeded random server (the random-order model).
#[derive(Debug, Clone)]
pub struct RandomOrderAdversary {
    num_procs: usize,
    /// Remaining sizes, already permuted; drained back-to-front.
    sizes: Vec<u64>,
    rng: StdRng,
    next_key: JobKey,
}

impl RandomOrderAdversary {
    /// `arrivals` sizes drawn from `dist`, then permuted by `seed`. The
    /// drawn multiset depends only on `(dist, arrivals, seed)`; two
    /// generators with different permutation seeds over the same multiset
    /// can be built via [`Self::from_sizes`].
    pub fn new(num_procs: usize, arrivals: usize, dist: SizeDistribution, seed: u64) -> Self {
        let mut draw = StdRng::seed_from_u64(seed.wrapping_mul(2).wrapping_add(1));
        let sizes: Vec<u64> = (0..arrivals)
            .map(|_| dist.sample(&mut draw).max(1))
            .collect();
        Self::from_sizes(num_procs, sizes, seed)
    }

    /// A random-order stream over an explicit multiset, permuted by `seed`.
    pub fn from_sizes(num_procs: usize, mut sizes: Vec<u64>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates, then drain back-to-front so arrival order is the
        // permuted order.
        for i in (1..sizes.len()).rev() {
            sizes.swap(i, rng.gen_range(0..=i));
        }
        sizes.reverse();
        RandomOrderAdversary {
            num_procs,
            sizes,
            rng,
            next_key: 0,
        }
    }

    /// The remaining multiset, in arrival order.
    pub fn remaining(&self) -> impl Iterator<Item = u64> + '_ {
        self.sizes.iter().rev().copied()
    }
}

impl Adversary for RandomOrderAdversary {
    fn name(&self) -> &'static str {
        "random-order"
    }

    fn next(&mut self, _loads: &[u64]) -> Option<Event> {
        let size = self.sizes.pop()?;
        let key = self.next_key;
        self.next_key += 1;
        Some(Event::Arrive {
            key,
            job: Job::with_cost(size, size),
            proc: self.rng.gen_range(0..self.num_procs),
        })
    }
}

/// The Graham lower-bound stream against least-loaded placement:
/// `m·(m−1)` jobs of size `unit` (which least-loaded spreads into a
/// perfectly level `(m−1)·unit` profile), then one job of size `m·unit`.
/// Any policy that cannot migrate ends at `(2m−1)·unit` against
/// `OPT = m·unit` — the classic `2 − 1/m` greedy bound.
#[derive(Debug, Clone)]
pub struct GreedyPunisher {
    num_procs: usize,
    unit: u64,
    emitted: usize,
    next_key: JobKey,
}

impl GreedyPunisher {
    /// The punishing stream over `num_procs` servers at granularity
    /// `unit ≥ 1` (`m·(m−1) + 1` arrivals in total).
    pub fn new(num_procs: usize, unit: u64) -> Self {
        GreedyPunisher {
            num_procs,
            unit: unit.max(1),
            emitted: 0,
            next_key: 0,
        }
    }

    /// Arrivals this stream will emit in total.
    pub fn stream_len(&self) -> usize {
        self.num_procs * (self.num_procs.saturating_sub(1)) + 1
    }
}

impl Adversary for GreedyPunisher {
    fn name(&self) -> &'static str {
        "greedy-punisher"
    }

    fn next(&mut self, loads: &[u64]) -> Option<Event> {
        if self.emitted >= self.stream_len() {
            return None;
        }
        let small = self.num_procs * (self.num_procs.saturating_sub(1));
        let size = if self.emitted < small {
            self.unit
        } else {
            self.unit.saturating_mul(self.num_procs as u64)
        };
        self.emitted += 1;
        let key = self.next_key;
        self.next_key += 1;
        Some(Event::Arrive {
            key,
            job: Job::with_cost(size, size),
            proc: least_loaded(loads),
        })
    }
}

/// A load-adaptive adversary: each arrival reads the live loads and lands
/// `max(max_load − min_load, 1)` units (clamped to `max_size`) on the
/// least-loaded server — permanently re-leveling the profile so migration
/// budget buys nothing — then finishes with one `max_size` job on the
/// least-loaded server to spike the makespan.
#[derive(Debug, Clone)]
pub struct AdaptiveAdversary {
    arrivals: usize,
    max_size: u64,
    emitted: usize,
    next_key: JobKey,
}

impl AdaptiveAdversary {
    /// A stream of `arrivals` load-reactive jobs with sizes in
    /// `1..=max_size`.
    pub fn new(arrivals: usize, max_size: u64) -> Self {
        AdaptiveAdversary {
            arrivals,
            max_size: max_size.max(1),
            emitted: 0,
            next_key: 0,
        }
    }
}

impl Adversary for AdaptiveAdversary {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn next(&mut self, loads: &[u64]) -> Option<Event> {
        if self.emitted >= self.arrivals {
            return None;
        }
        let max = loads.iter().copied().max().unwrap_or(0);
        let min = loads.iter().copied().min().unwrap_or(0);
        let size = if self.emitted + 1 == self.arrivals {
            self.max_size
        } else {
            (max - min).clamp(1, self.max_size)
        };
        self.emitted += 1;
        let key = self.next_key;
        self.next_key += 1;
        Some(Event::Arrive {
            key,
            job: Job::with_cost(size, size),
            proc: least_loaded(loads),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(adv: &mut dyn Adversary, num_procs: usize) -> Vec<(u64, usize)> {
        // Simulate no-migration least-loaded accumulation of the stream.
        let mut loads = vec![0u64; num_procs];
        let mut out = Vec::new();
        while let Some(Event::Arrive { job, proc, .. }) = adv.next(&loads) {
            loads[proc] += job.size;
            out.push((job.size, proc));
        }
        out
    }

    #[test]
    fn random_order_permutes_a_fixed_multiset() {
        let sizes = vec![5u64, 1, 9, 2, 7, 3];
        let mut a = RandomOrderAdversary::from_sizes(3, sizes.clone(), 4);
        let mut b = RandomOrderAdversary::from_sizes(3, sizes.clone(), 9);
        let sa = drain(&mut a, 3);
        let sb = drain(&mut b, 3);
        let mut ma: Vec<u64> = sa.iter().map(|&(s, _)| s).collect();
        let mut mb: Vec<u64> = sb.iter().map(|&(s, _)| s).collect();
        ma.sort_unstable();
        mb.sort_unstable();
        let mut want = sizes;
        want.sort_unstable();
        assert_eq!(ma, want);
        assert_eq!(mb, want);
        // Different seeds give different orders (for this multiset).
        assert_ne!(sa, sb);
        // Same seed is deterministic.
        let mut c = RandomOrderAdversary::from_sizes(3, vec![5, 1, 9, 2, 7, 3], 4);
        assert_eq!(drain(&mut c, 3), sa);
    }

    #[test]
    fn random_order_draws_carry_cost_equal_to_size() {
        let mut adv =
            RandomOrderAdversary::new(2, 8, SizeDistribution::Uniform { lo: 1, hi: 20 }, 11);
        let loads = [0u64, 0];
        let mut n = 0;
        while let Some(Event::Arrive { key, job, proc }) = adv.next(&loads) {
            assert_eq!(key, n);
            assert_eq!(job.cost, job.size);
            assert!(job.size >= 1);
            assert!(proc < 2);
            n += 1;
        }
        assert_eq!(n, 8);
    }

    #[test]
    fn greedy_punisher_forces_the_graham_ratio_without_migration() {
        for m in [2usize, 3, 4] {
            let mut adv = GreedyPunisher::new(m, 2);
            assert_eq!(adv.stream_len(), m * (m - 1) + 1);
            let placed = drain(&mut adv, m);
            assert_eq!(placed.len(), m * (m - 1) + 1);
            // Replay the no-migration accumulation: final makespan is
            // (m-1)·unit + m·unit = (2m-1)·unit, while OPT is m·unit.
            let mut loads = vec![0u64; m];
            for &(s, p) in &placed {
                loads[p] += s;
            }
            let unit = 2u64;
            assert_eq!(
                loads.iter().copied().max().unwrap(),
                (2 * m as u64 - 1) * unit
            );
            let total: u64 = loads.iter().sum();
            assert_eq!(total, (m * (m - 1)) as u64 * unit + m as u64 * unit);
        }
    }

    #[test]
    fn adaptive_adversary_levels_then_spikes() {
        let mut adv = AdaptiveAdversary::new(6, 10);
        assert_eq!(adv.name(), "adaptive");
        let placed = drain(&mut adv, 2);
        assert_eq!(placed.len(), 6);
        // The final arrival is the max-size spike.
        assert_eq!(placed.last().unwrap().0, 10);
        // Every arrival lands on what was then the least-loaded server.
        let mut loads = [0u64; 2];
        for &(s, p) in &placed {
            let ll = (0..2).min_by_key(|&q| loads[q]).unwrap();
            assert_eq!(p, ll);
            loads[p] += s;
        }
    }

    #[test]
    fn streams_are_exhausted_exactly_once() {
        let mut adv = GreedyPunisher::new(3, 1);
        let loads = [0u64, 0, 0];
        for _ in 0..adv.stream_len() {
            assert!(adv.next(&loads).is_some());
        }
        assert!(adv.next(&loads).is_none());
        assert!(adv.next(&loads).is_none());
    }
}
