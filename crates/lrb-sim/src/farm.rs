//! The web-farm simulator: the Linder–Shah website-migration scenario the
//! paper cites as its motivating application (§1, §3).
//!
//! Websites with drifting loads live on servers; each epoch the simulator
//! refreshes the loads, asks the policy for a rebalanced placement within
//! the per-epoch budget, applies it, and records metrics. Migration cost of
//! a site is configurable (unit per site, or proportional to its load as a
//! proxy for content size).

use std::time::Instant;

use lrb_core::model::{Budget, Instance, Job};
use lrb_faults::{FaultPlan, FaultyView};
use lrb_obs::{names, NoopRecorder, NoopTracer, Recorder, Tracer};

use crate::metrics::{DecisionCounters, DegradationMetrics, EpochMetrics, SimReport};
use crate::policy::Policy;
use crate::workload::{Workload, WorkloadConfig};

/// The solver work allowance handed to policies (via
/// [`Policy::note_work_budget`]) on epochs whose fault plan declares the
/// solver budget exhausted. Deliberately tight — a few hundred ticks is not
/// enough for any real tier on a farm-sized instance, so fallback chains
/// actually degrade.
pub const EXHAUSTED_EPOCH_WORK_TICKS: u64 = 256;

/// Migration cost model for websites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCost {
    /// Every site costs 1 to move.
    Unit,
    /// Moving a site costs `max(1, load / divisor)` — content scales with
    /// popularity.
    ProportionalToLoad {
        /// Load units per cost unit.
        divisor: u64,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FarmConfig {
    /// Number of servers.
    pub num_servers: usize,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Per-epoch relocation budget handed to the policy.
    pub budget: Budget,
    /// Website workload model.
    pub workload: WorkloadConfig,
    /// Migration cost model.
    pub migration_cost: MigrationCost,
    /// RNG seed (workload and initial placement).
    pub seed: u64,
}

impl FarmConfig {
    /// A default farm: 8 servers, 100 epochs, 4 moves per epoch.
    pub fn default_farm(num_sites: usize, num_servers: usize) -> Self {
        FarmConfig {
            num_servers,
            epochs: 100,
            budget: Budget::Moves(4),
            workload: WorkloadConfig::default_web(num_sites),
            migration_cost: MigrationCost::Unit,
            seed: 0,
        }
    }
}

/// Run the simulation with a policy, returning the trace.
///
/// The initial placement is balanced (LPT on the initial loads): drift is
/// what unbalances it, exactly the paper's story.
pub fn run(cfg: &FarmConfig, policy: &mut dyn Policy) -> SimReport {
    run_recorded(cfg, policy, &NoopRecorder)
}

/// [`run`] with instrumentation: besides the wall-time and decision data
/// every report carries, feeds per-epoch timings into `sim.epoch` /
/// `sim.epoch_nanos` and decision counts into `sim.epochs`,
/// `sim.rebalanced`, and `sim.unchanged` on the recorder.
pub fn run_recorded<R: Recorder>(cfg: &FarmConfig, policy: &mut dyn Policy, rec: &R) -> SimReport {
    let mut workload = Workload::new(cfg.workload, cfg.seed);
    let mut placement = lrb_core::lpt::schedule(workload.loads(), cfg.num_servers);
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut epoch_wall_nanos = Vec::with_capacity(cfg.epochs);
    let mut decisions = DecisionCounters::default();

    for epoch in 0..cfg.epochs {
        let started = Instant::now();
        workload.step();
        let inst = instance_for(workload.loads(), &placement, cfg);
        let new_assignment = policy.rebalance(&inst, cfg.budget);

        // Enforce the contract: well-formed and within budget (the
        // full-rebalance baseline is exempt from the budget by design).
        let makespan = inst
            .makespan_of(&new_assignment)
            .expect("policy returned malformed assignment");
        let unlimited = policy.name() == "full-rebalance";
        assert!(
            unlimited || cfg.budget.allows(&inst, &new_assignment),
            "policy {} exceeded the budget",
            policy.name()
        );

        let migrations = inst.move_count(&new_assignment);
        let migration_cost = inst.move_cost(&new_assignment);
        epochs.push(EpochMetrics {
            epoch,
            makespan,
            avg_load: inst.avg_load_ceil(),
            migrations,
            migration_cost,
        });
        placement = new_assignment;

        decisions.record(migrations);
        let nanos = (started.elapsed().as_nanos() as u64).max(1);
        epoch_wall_nanos.push(nanos);
        rec.incr(names::SIM_EPOCHS, 1);
        rec.incr(
            if migrations > 0 {
                names::SIM_REBALANCED
            } else {
                names::SIM_UNCHANGED
            },
            1,
        );
        rec.observe(names::SIM_EPOCH_NANOS, nanos);
        rec.record_duration(names::SIM_EPOCH, nanos);
    }

    SimReport {
        policy: policy.name().to_string(),
        epochs,
        epoch_wall_nanos,
        decisions,
        degradation: DegradationMetrics::default(),
        provenance: Vec::new(),
    }
}

/// [`run_faulty_recorded`] without instrumentation.
pub fn run_faulty(cfg: &FarmConfig, policy: &mut dyn Policy, plan: &FaultPlan) -> SimReport {
    run_faulty_recorded(cfg, policy, plan, &NoopRecorder)
}

/// Run the simulation under a fault plan: crash-aware epoch stepping with
/// graceful degradation instead of panics.
///
/// Each epoch:
///
/// 1. Sites stranded on crashed servers are **evacuated** to the
///    least-loaded surviving server; those forced moves bill the epoch's
///    relocation budget.
/// 2. The policy is told about outages and any solver-work exhaustion
///    ([`Policy::note_outages`] / [`Policy::note_work_budget`]), then handed
///    the *corrupted* view of the farm ([`FaultyView`]: stale, dropped, or
///    perturbed load reports), projected onto the surviving servers so no
///    policy can place a site on a dead one.
/// 3. The answer is validated against the **true** farm state; a malformed
///    or over-budget answer is rejected (keeping the evacuated placement)
///    rather than panicking — metrics always describe true loads.
///
/// Degradation is aggregated in [`SimReport::degradation`] and per-epoch
/// answer provenance in [`SimReport::provenance`]. A fault-free plan takes
/// the exact historical code path, so its report is bit-for-bit identical
/// to [`run_recorded`].
pub fn run_faulty_recorded<R: Recorder>(
    cfg: &FarmConfig,
    policy: &mut dyn Policy,
    plan: &FaultPlan,
    rec: &R,
) -> SimReport {
    run_faulty_traced(cfg, policy, plan, rec, &NoopTracer)
}

/// [`run_faulty_recorded`] with span tracing: crash/recovery transitions and
/// per-site evacuations additionally land on the tracer as `fault.crash`,
/// `fault.recovery`, and `fault.evacuation` instant events (payload = the
/// processor or site index). [`NoopTracer`] compiles the tracing away, so
/// the recorded path is unchanged.
pub fn run_faulty_traced<R: Recorder, T: Tracer>(
    cfg: &FarmConfig,
    policy: &mut dyn Policy,
    plan: &FaultPlan,
    rec: &R,
    tracer: &T,
) -> SimReport {
    if plan.is_fault_free() {
        return run_recorded(cfg, policy, rec);
    }
    assert_eq!(
        plan.num_procs(),
        cfg.num_servers,
        "fault plan covers {} processors but the farm has {} servers",
        plan.num_procs(),
        cfg.num_servers
    );

    let mut workload = Workload::new(cfg.workload, cfg.seed);
    let mut placement = lrb_core::lpt::schedule(workload.loads(), cfg.num_servers);
    let mut view = FaultyView::new();
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut epoch_wall_nanos = Vec::with_capacity(cfg.epochs);
    let mut provenance = Vec::with_capacity(cfg.epochs);
    let mut decisions = DecisionCounters::default();
    let mut degradation = DegradationMetrics::default();
    let mut regret_sum = 0.0f64;
    let mut prev_down = vec![false; cfg.num_servers];

    for epoch in 0..cfg.epochs {
        let started = Instant::now();
        workload.step();
        let faults = plan.epoch(epoch);
        if T::ENABLED {
            let (crashed, recovered) = faults.transitions(&prev_down);
            for p in crashed {
                tracer.instant(names::FAULT_CRASH, p as u64, false);
            }
            for p in recovered {
                tracer.instant(names::FAULT_RECOVERY, p as u64, false);
            }
            prev_down.clone_from(&faults.down);
        }
        let loads: Vec<u64> = workload.loads().to_vec();
        let n = loads.len();
        let up: Vec<usize> = (0..cfg.num_servers).filter(|&p| !faults.down[p]).collect();

        // 1) Evacuate sites off crashed servers (forced, budget-billed).
        let mut server_load = vec![0u64; cfg.num_servers];
        for (site, &srv) in placement.iter().enumerate() {
            server_load[srv] = server_load[srv].saturating_add(loads[site]);
        }
        let mut forced_moves = 0usize;
        let mut forced_cost = 0u64;
        for site in 0..n {
            let from = placement[site];
            if faults.down[from] {
                let &to = up
                    .iter()
                    .min_by_key(|&&p| server_load[p])
                    .expect("fault plans keep at least one processor up");
                server_load[to] = server_load[to].saturating_add(loads[site]);
                server_load[from] = server_load[from].saturating_sub(loads[site]);
                placement[site] = to;
                forced_moves += 1;
                forced_cost =
                    forced_cost.saturating_add(site_cost(loads[site], cfg.migration_cost));
                tracer.instant(names::FAULT_EVACUATION, site as u64, false);
            }
        }
        let remaining_budget = match cfg.budget {
            Budget::Moves(k) => Budget::Moves(k.saturating_sub(forced_moves)),
            Budget::Cost(b) => Budget::Cost(b.saturating_sub(forced_cost)),
        };

        // 2) True state vs. the corrupted view the policy gets, projected
        //    onto the surviving servers.
        let true_inst = instance_for(&loads, &placement, cfg);
        let seen = view.observe(&true_inst, &faults, plan.perturb_pct());
        let mut up_index = vec![usize::MAX; cfg.num_servers];
        for (q, &p) in up.iter().enumerate() {
            up_index[p] = q;
        }
        let proj_jobs: Vec<Job> = (0..n)
            .map(|j| Job::with_cost(seen.size(j), seen.cost(j)))
            .collect();
        let proj_init: Vec<usize> = placement.iter().map(|&p| up_index[p]).collect();
        let proj_inst = Instance::new(proj_jobs, proj_init, up.len())
            .expect("evacuated placement lives on up servers");

        policy.note_outages(&faults.down);
        policy.note_work_budget(
            faults
                .solver_exhausted
                .then_some(EXHAUSTED_EPOCH_WORK_TICKS),
        );
        let proj_asg = policy.rebalance(&proj_inst, remaining_budget);

        // 3) Validate against the true farm; reject instead of panicking.
        let unlimited = policy.name() == "full-rebalance";
        let shaped = proj_asg.len() == n && proj_asg.iter().all(|&q| q < up.len());
        let accepted = shaped
            .then(|| proj_asg.iter().map(|&q| up[q]).collect::<Vec<usize>>())
            .filter(|mapped| {
                true_inst.makespan_of(mapped).is_ok()
                    && (unlimited || remaining_budget.allows(&true_inst, mapped))
            });
        let rejected = accepted.is_none();
        let final_placement = accepted.unwrap_or_else(|| placement.clone());

        let policy_moves = true_inst.move_count(&final_placement);
        let makespan = true_inst
            .makespan_of(&final_placement)
            .expect("evacuated placement is well-formed");
        let migrations = forced_moves + policy_moves;
        let migration_cost = forced_cost.saturating_add(true_inst.move_cost(&final_placement));
        // The honest per-epoch lower bound averages over *surviving*
        // servers only.
        let avg_load = true_inst.total_size().div_ceil(up.len() as u64).max(1);
        let oracle = lpt_makespan(&loads, up.len()).max(1);
        regret_sum += (makespan as f64 / oracle as f64 - 1.0).max(0.0);

        let tier = if rejected {
            "rejected"
        } else {
            policy.provenance()
        };
        let fallback = !rejected && tier != "policy";
        let degraded = forced_moves > 0 || rejected || fallback || faults.solver_exhausted;
        degradation.epochs_degraded += u64::from(degraded);
        degradation.fallback_invocations += u64::from(fallback);
        degradation.forced_migrations += forced_moves as u64;
        degradation.forced_migration_cost = degradation
            .forced_migration_cost
            .saturating_add(forced_cost);
        degradation.policy_rejections += u64::from(rejected);
        degradation.budget_exhausted_epochs += u64::from(faults.solver_exhausted);
        provenance.push(tier.to_string());

        epochs.push(EpochMetrics {
            epoch,
            makespan,
            avg_load,
            migrations,
            migration_cost,
        });
        placement = final_placement;

        decisions.record(migrations);
        let nanos = (started.elapsed().as_nanos() as u64).max(1);
        epoch_wall_nanos.push(nanos);
        rec.incr(names::SIM_EPOCHS, 1);
        rec.incr(
            if migrations > 0 {
                names::SIM_REBALANCED
            } else {
                names::SIM_UNCHANGED
            },
            1,
        );
        rec.observe(names::SIM_EPOCH_NANOS, nanos);
        rec.record_duration(names::SIM_EPOCH, nanos);
        if degraded {
            rec.incr(names::SIM_DEGRADED_EPOCHS, 1);
        }
        if forced_moves > 0 {
            rec.incr(names::SIM_FORCED_MIGRATIONS, forced_moves as u64);
        }
        if rejected {
            rec.incr(names::SIM_POLICY_REJECTIONS, 1);
        }
        if fallback {
            rec.incr(names::SIM_FALLBACKS, 1);
        }
    }

    degradation.mean_oracle_regret = if cfg.epochs > 0 {
        regret_sum / cfg.epochs as f64
    } else {
        0.0
    };
    SimReport {
        policy: policy.name().to_string(),
        epochs,
        epoch_wall_nanos,
        decisions,
        degradation,
        provenance,
    }
}

/// Migration cost of one site under the configured model.
fn site_cost(load: u64, model: MigrationCost) -> u64 {
    match model {
        MigrationCost::Unit => 1,
        MigrationCost::ProportionalToLoad { divisor } => (load / divisor.max(1)).max(1),
    }
}

/// Makespan of a fresh LPT schedule of `loads` on `m` servers — the
/// unconstrained oracle used for regret (shared with the online driver).
pub(crate) fn lpt_makespan(loads: &[u64], m: usize) -> u64 {
    let asg = lrb_core::lpt::schedule(loads, m);
    let mut per = vec![0u64; m];
    for (j, &p) in asg.iter().enumerate() {
        per[p] = per[p].saturating_add(loads[j]);
    }
    per.into_iter().max().unwrap_or(0)
}

/// Snapshot the farm as a load rebalancing instance.
pub(crate) fn instance_for(loads: &[u64], placement: &[usize], cfg: &FarmConfig) -> Instance {
    let jobs: Vec<Job> = loads
        .iter()
        .map(|&l| Job::with_cost(l, site_cost(l, cfg.migration_cost)))
        .collect();
    Instance::new(jobs, placement.to_vec(), cfg.num_servers)
        .expect("farm state is always a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FullRebalance, GreedyPolicy, MPartitionPolicy, NoRebalance};

    fn cfg() -> FarmConfig {
        let mut c = FarmConfig::default_farm(60, 6);
        c.epochs = 40;
        c
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cfg();
        let a = run(&c, &mut MPartitionPolicy);
        let b = run(&c, &mut MPartitionPolicy);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn no_rebalance_never_migrates() {
        let r = run(&cfg(), &mut NoRebalance);
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn budget_is_enforced_per_epoch() {
        let c = cfg();
        let r = run(&c, &mut GreedyPolicy);
        for e in &r.epochs {
            assert!(
                e.migrations <= 4,
                "epoch {}: {} migrations",
                e.epoch,
                e.migrations
            );
        }
    }

    #[test]
    fn rebalancing_beats_drifting() {
        let c = cfg();
        let drift = run(&c, &mut NoRebalance);
        let fixed = run(&c, &mut MPartitionPolicy);
        assert!(
            fixed.mean_imbalance() <= drift.mean_imbalance(),
            "m-partition {} vs no-rebalance {}",
            fixed.mean_imbalance(),
            drift.mean_imbalance()
        );
    }

    #[test]
    fn full_rebalance_is_the_quality_ceiling() {
        let c = cfg();
        let full = run(&c, &mut FullRebalance);
        let bounded = run(&c, &mut MPartitionPolicy);
        // Full rebalancing moves more but balances at least as well
        // (tolerate tiny noise from LPT non-optimality).
        assert!(full.mean_imbalance() <= bounded.mean_imbalance() + 0.05);
        assert!(full.total_migrations() >= bounded.total_migrations());
    }

    #[test]
    fn diurnal_farm_rewards_rebalancing_more() {
        // A day/night cycle creates recurring, correlated imbalance that a
        // static placement cannot absorb; rebalancing pays off clearly.
        let mut c = cfg();
        c.workload = crate::workload::WorkloadConfig::diurnal_web(60, 20);
        let drift = run(&c, &mut NoRebalance);
        let fixed = run(&c, &mut MPartitionPolicy);
        assert!(fixed.mean_imbalance() < drift.mean_imbalance());
    }

    #[test]
    fn cost_budget_variant_runs() {
        let mut c = cfg();
        c.budget = Budget::Cost(6);
        c.migration_cost = MigrationCost::ProportionalToLoad { divisor: 8 };
        let r = run(&c, &mut MPartitionPolicy);
        for e in &r.epochs {
            assert!(e.migration_cost <= 6, "epoch {}", e.epoch);
        }
    }

    #[test]
    fn no_fault_plan_reproduces_the_faultless_report_bit_for_bit() {
        let c = cfg();
        let clean = run(&c, &mut MPartitionPolicy);
        let faulty = run_faulty(&c, &mut MPartitionPolicy, &FaultPlan::none(c.num_servers));
        assert_eq!(clean.epochs, faulty.epochs);
        assert_eq!(clean.decisions, faulty.decisions);
        assert_eq!(clean.degradation, faulty.degradation);
        assert!(faulty.degradation.is_clean());
        assert!(faulty.provenance.is_empty());
    }

    #[test]
    fn crashes_force_evacuations_and_every_epoch_stays_valid() {
        let c = cfg();
        let plan = lrb_faults::FaultPlan::generate(
            &lrb_faults::FaultConfig::crashes(0.2, 0.5, 17),
            c.num_servers,
            c.epochs,
        );
        assert!(!plan.is_fault_free());
        let r = run_faulty(&c, &mut MPartitionPolicy, &plan);
        assert_eq!(r.epochs.len(), c.epochs);
        assert_eq!(r.provenance.len(), c.epochs);
        assert!(r.degradation.forced_migrations > 0, "{:?}", r.degradation);
        assert!(r.degradation.epochs_degraded > 0);
        // Every epoch still produced a finite, well-formed makespan.
        for e in &r.epochs {
            assert!(
                e.makespan >= e.avg_load || e.makespan == 0,
                "epoch {}",
                e.epoch
            );
        }
    }

    #[test]
    fn traced_faulty_runs_emit_fault_events_and_match_recorded() {
        let c = cfg();
        let plan = lrb_faults::FaultPlan::generate(
            &lrb_faults::FaultConfig::crashes(0.2, 0.5, 17),
            c.num_servers,
            c.epochs,
        );
        let plain = run_faulty(&c, &mut MPartitionPolicy, &plan);
        let collector = lrb_obs::TraceCollector::new(1);
        let traced = run_faulty_traced(
            &c,
            &mut MPartitionPolicy,
            &plan,
            collector.main(),
            collector.main(),
        );
        assert_eq!(
            plain.epochs, traced.epochs,
            "tracing must not change results"
        );
        let trace = collector.finish("chaos", 17, 1, "m-partition");
        assert!(trace.events_named(names::FAULT_CRASH).count() > 0);
        assert_eq!(
            trace.events_named(names::FAULT_EVACUATION).count() as u64,
            traced.degradation.forced_migrations,
            "one evacuation instant per forced migration"
        );
        // Every epoch lands as a sim.epoch span via the recorder bridge.
        assert_eq!(trace.events_named(names::SIM_EPOCH).count(), c.epochs);
        // Crash/recovery transitions never exceed the number of crashes.
        assert!(
            trace.events_named(names::FAULT_RECOVERY).count()
                <= trace.events_named(names::FAULT_CRASH).count()
        );
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let c = cfg();
        let mk = || {
            lrb_faults::FaultPlan::generate(
                &lrb_faults::FaultConfig {
                    crash_rate: 0.15,
                    recovery_rate: 0.4,
                    perturb_pct: 10,
                    stale_rate: 0.1,
                    drop_rate: 0.05,
                    exhaust_rate: 0.1,
                    seed: 23,
                },
                c.num_servers,
                c.epochs,
            )
        };
        let a = run_faulty(&c, &mut crate::policy::FallbackPolicy::practical(), &mk());
        let b = run_faulty(&c, &mut crate::policy::FallbackPolicy::practical(), &mk());
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn exhausted_solver_budgets_invoke_the_fallback_chain() {
        let c = cfg();
        let plan = lrb_faults::FaultPlan::generate(
            &lrb_faults::FaultConfig {
                exhaust_rate: 1.0,
                ..lrb_faults::FaultConfig::none(5)
            },
            c.num_servers,
            c.epochs,
        );
        let mut p = crate::policy::FallbackPolicy::standard();
        let r = run_faulty(&c, &mut p, &plan);
        assert_eq!(r.degradation.budget_exhausted_epochs, c.epochs as u64);
        assert!(
            r.degradation.fallback_invocations > 0,
            "{:?}",
            r.degradation
        );
        // The starved chain bottoms out at no-move, which is recorded as
        // the answering tier.
        assert!(
            r.provenance.iter().any(|t| t == "no-move"),
            "{:?}",
            r.provenance
        );
    }

    #[test]
    fn oracle_regret_is_finite_and_nonnegative() {
        let c = cfg();
        let plan = lrb_faults::FaultPlan::generate(
            &lrb_faults::FaultConfig::crashes(0.3, 0.3, 99),
            c.num_servers,
            c.epochs,
        );
        let r = run_faulty(&c, &mut GreedyPolicy, &plan);
        assert!(r.degradation.mean_oracle_regret.is_finite());
        assert!(r.degradation.mean_oracle_regret >= 0.0);
    }
}
