//! The web-farm simulator: the Linder–Shah website-migration scenario the
//! paper cites as its motivating application (§1, §3).
//!
//! Websites with drifting loads live on servers; each epoch the simulator
//! refreshes the loads, asks the policy for a rebalanced placement within
//! the per-epoch budget, applies it, and records metrics. Migration cost of
//! a site is configurable (unit per site, or proportional to its load as a
//! proxy for content size).

use std::time::Instant;

use lrb_core::model::{Budget, Instance, Job};
use lrb_obs::{NoopRecorder, Recorder};

use crate::metrics::{DecisionCounters, EpochMetrics, SimReport};
use crate::policy::Policy;
use crate::workload::{Workload, WorkloadConfig};

/// Migration cost model for websites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCost {
    /// Every site costs 1 to move.
    Unit,
    /// Moving a site costs `max(1, load / divisor)` — content scales with
    /// popularity.
    ProportionalToLoad {
        /// Load units per cost unit.
        divisor: u64,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FarmConfig {
    /// Number of servers.
    pub num_servers: usize,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Per-epoch relocation budget handed to the policy.
    pub budget: Budget,
    /// Website workload model.
    pub workload: WorkloadConfig,
    /// Migration cost model.
    pub migration_cost: MigrationCost,
    /// RNG seed (workload and initial placement).
    pub seed: u64,
}

impl FarmConfig {
    /// A default farm: 8 servers, 100 epochs, 4 moves per epoch.
    pub fn default_farm(num_sites: usize, num_servers: usize) -> Self {
        FarmConfig {
            num_servers,
            epochs: 100,
            budget: Budget::Moves(4),
            workload: WorkloadConfig::default_web(num_sites),
            migration_cost: MigrationCost::Unit,
            seed: 0,
        }
    }
}

/// Run the simulation with a policy, returning the trace.
///
/// The initial placement is balanced (LPT on the initial loads): drift is
/// what unbalances it, exactly the paper's story.
pub fn run(cfg: &FarmConfig, policy: &mut dyn Policy) -> SimReport {
    run_recorded(cfg, policy, &NoopRecorder)
}

/// [`run`] with instrumentation: besides the wall-time and decision data
/// every report carries, feeds per-epoch timings into `sim.epoch` /
/// `sim.epoch_nanos` and decision counts into `sim.epochs`,
/// `sim.rebalanced`, and `sim.unchanged` on the recorder.
pub fn run_recorded<R: Recorder>(cfg: &FarmConfig, policy: &mut dyn Policy, rec: &R) -> SimReport {
    let mut workload = Workload::new(cfg.workload, cfg.seed);
    let mut placement = lrb_core::lpt::schedule(workload.loads(), cfg.num_servers);
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut epoch_wall_nanos = Vec::with_capacity(cfg.epochs);
    let mut decisions = DecisionCounters::default();

    for epoch in 0..cfg.epochs {
        let started = Instant::now();
        workload.step();
        let inst = instance_for(workload.loads(), &placement, cfg);
        let new_assignment = policy.rebalance(&inst, cfg.budget);

        // Enforce the contract: well-formed and within budget (the
        // full-rebalance baseline is exempt from the budget by design).
        let makespan = inst
            .makespan_of(&new_assignment)
            .expect("policy returned malformed assignment");
        let unlimited = policy.name() == "full-rebalance";
        assert!(
            unlimited || cfg.budget.allows(&inst, &new_assignment),
            "policy {} exceeded the budget",
            policy.name()
        );

        let migrations = inst.move_count(&new_assignment);
        let migration_cost = inst.move_cost(&new_assignment);
        epochs.push(EpochMetrics {
            epoch,
            makespan,
            avg_load: inst.avg_load_ceil(),
            migrations,
            migration_cost,
        });
        placement = new_assignment;

        decisions.record(migrations);
        let nanos = (started.elapsed().as_nanos() as u64).max(1);
        epoch_wall_nanos.push(nanos);
        rec.incr("sim.epochs", 1);
        rec.incr(
            if migrations > 0 {
                "sim.rebalanced"
            } else {
                "sim.unchanged"
            },
            1,
        );
        rec.observe("sim.epoch_nanos", nanos);
        rec.record_duration("sim.epoch", nanos);
    }

    SimReport {
        policy: policy.name().to_string(),
        epochs,
        epoch_wall_nanos,
        decisions,
    }
}

/// Snapshot the farm as a load rebalancing instance.
fn instance_for(loads: &[u64], placement: &[usize], cfg: &FarmConfig) -> Instance {
    let jobs: Vec<Job> = loads
        .iter()
        .map(|&l| {
            let cost = match cfg.migration_cost {
                MigrationCost::Unit => 1,
                MigrationCost::ProportionalToLoad { divisor } => (l / divisor.max(1)).max(1),
            };
            Job::with_cost(l, cost)
        })
        .collect();
    Instance::new(jobs, placement.to_vec(), cfg.num_servers)
        .expect("farm state is always a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FullRebalance, GreedyPolicy, MPartitionPolicy, NoRebalance};

    fn cfg() -> FarmConfig {
        let mut c = FarmConfig::default_farm(60, 6);
        c.epochs = 40;
        c
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cfg();
        let a = run(&c, &mut MPartitionPolicy);
        let b = run(&c, &mut MPartitionPolicy);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn no_rebalance_never_migrates() {
        let r = run(&cfg(), &mut NoRebalance);
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn budget_is_enforced_per_epoch() {
        let c = cfg();
        let r = run(&c, &mut GreedyPolicy);
        for e in &r.epochs {
            assert!(
                e.migrations <= 4,
                "epoch {}: {} migrations",
                e.epoch,
                e.migrations
            );
        }
    }

    #[test]
    fn rebalancing_beats_drifting() {
        let c = cfg();
        let drift = run(&c, &mut NoRebalance);
        let fixed = run(&c, &mut MPartitionPolicy);
        assert!(
            fixed.mean_imbalance() <= drift.mean_imbalance(),
            "m-partition {} vs no-rebalance {}",
            fixed.mean_imbalance(),
            drift.mean_imbalance()
        );
    }

    #[test]
    fn full_rebalance_is_the_quality_ceiling() {
        let c = cfg();
        let full = run(&c, &mut FullRebalance);
        let bounded = run(&c, &mut MPartitionPolicy);
        // Full rebalancing moves more but balances at least as well
        // (tolerate tiny noise from LPT non-optimality).
        assert!(full.mean_imbalance() <= bounded.mean_imbalance() + 0.05);
        assert!(full.total_migrations() >= bounded.total_migrations());
    }

    #[test]
    fn diurnal_farm_rewards_rebalancing_more() {
        // A day/night cycle creates recurring, correlated imbalance that a
        // static placement cannot absorb; rebalancing pays off clearly.
        let mut c = cfg();
        c.workload = crate::workload::WorkloadConfig::diurnal_web(60, 20);
        let drift = run(&c, &mut NoRebalance);
        let fixed = run(&c, &mut MPartitionPolicy);
        assert!(fixed.mean_imbalance() < drift.mean_imbalance());
    }

    #[test]
    fn cost_budget_variant_runs() {
        let mut c = cfg();
        c.budget = Budget::Cost(6);
        c.migration_cost = MigrationCost::ProportionalToLoad { divisor: 8 };
        let r = run(&c, &mut MPartitionPolicy);
        for e in &r.epochs {
            assert!(e.migration_cost <= 6, "epoch {}", e.epoch);
        }
    }
}
