//! Per-epoch and aggregate metrics for simulation runs.

use serde::{Deserialize, Serialize};

/// Metrics of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Epoch index.
    pub epoch: usize,
    /// Makespan after rebalancing.
    pub makespan: u64,
    /// Average server load (ceiling), the per-epoch lower bound.
    pub avg_load: u64,
    /// Number of migrations performed this epoch.
    pub migrations: usize,
    /// Total migration cost this epoch.
    pub migration_cost: u64,
}

impl EpochMetrics {
    /// Imbalance = makespan / avg (≥ 1.0).
    pub fn imbalance(&self) -> f64 {
        self.makespan as f64 / self.avg_load.max(1) as f64
    }
}

/// How often the policy actually changed the placement.
///
/// An epoch counts as `rebalanced` when the policy migrated at least one
/// job, `unchanged` otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DecisionCounters {
    /// Epochs where the policy migrated at least one job.
    pub rebalanced: u64,
    /// Epochs where the policy left the placement as-is.
    pub unchanged: u64,
}

impl DecisionCounters {
    /// Fold one epoch's migration count into the counters.
    pub fn record(&mut self, migrations: usize) {
        if migrations > 0 {
            self.rebalanced += 1;
        } else {
            self.unchanged += 1;
        }
    }

    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.rebalanced + self.unchanged
    }
}

/// Degradation bookkeeping for fault-injected runs.
///
/// All-zero (the [`Default`]) for fault-free runs; old JSON reports without
/// the field parse to exactly that.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradationMetrics {
    /// Epochs where anything degraded: forced evacuations, a rejected
    /// policy answer, a fallback past the first tier, or an exhausted
    /// solver budget.
    pub epochs_degraded: u64,
    /// Epochs answered by a fallback tier below the first choice.
    pub fallback_invocations: u64,
    /// Migrations forced by evacuating jobs off crashed processors (they
    /// count against the epoch budget).
    pub forced_migrations: u64,
    /// Relocation cost of those forced migrations.
    pub forced_migration_cost: u64,
    /// Epochs whose policy answer was invalid or over budget and was
    /// discarded in favor of the evacuated placement.
    pub policy_rejections: u64,
    /// Epochs whose solver work budget was declared exhausted by the fault
    /// plan.
    pub budget_exhausted_epochs: u64,
    /// Mean makespan-vs-oracle regret across epochs: the oracle is a full
    /// LPT rebalance over the *up* processors, so regret =
    /// `mean(makespan / oracle − 1)` (0.0 when never behind the oracle).
    pub mean_oracle_regret: f64,
}

impl DegradationMetrics {
    /// Whether the run saw no degradation at all.
    pub fn is_clean(&self) -> bool {
        self == &DegradationMetrics::default()
    }
}

/// A full simulation trace plus aggregates.
///
/// Wall-clock data lives here rather than in [`EpochMetrics`] so that
/// deterministic-replay comparisons over `epochs` stay exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// The policy that produced the trace.
    pub policy: String,
    /// Per-epoch metrics.
    pub epochs: Vec<EpochMetrics>,
    /// Wall-clock nanoseconds each epoch spent in the policy + bookkeeping
    /// (parallel to `epochs`; empty in reports predating this field).
    #[serde(default)]
    pub epoch_wall_nanos: Vec<u64>,
    /// Rebalance-vs-no-op decision counts across the run.
    #[serde(default)]
    pub decisions: DecisionCounters,
    /// Fault-handling aggregates (all-zero for fault-free runs; defaults
    /// when parsing reports predating the field).
    #[serde(default)]
    pub degradation: DegradationMetrics,
    /// Per-epoch provenance tags ("policy", or the answering fallback tier
    /// such as "greedy"/"no-move"). Parallel to `epochs` for fault-injected
    /// runs; empty for fault-free runs and old reports.
    #[serde(default)]
    pub provenance: Vec<String>,
}

impl SimReport {
    /// Build a report with empty timing/decision extras (they are folded in
    /// by the simulators as the run progresses).
    pub fn new(policy: impl Into<String>, epochs: Vec<EpochMetrics>) -> Self {
        SimReport {
            policy: policy.into(),
            epochs,
            epoch_wall_nanos: Vec::new(),
            decisions: DecisionCounters::default(),
            degradation: DegradationMetrics::default(),
            provenance: Vec::new(),
        }
    }

    /// Mean imbalance across epochs.
    pub fn mean_imbalance(&self) -> f64 {
        if self.epochs.is_empty() {
            return 1.0;
        }
        self.epochs.iter().map(|e| e.imbalance()).sum::<f64>() / self.epochs.len() as f64
    }

    /// Worst imbalance across epochs.
    pub fn max_imbalance(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.imbalance())
            .fold(1.0, f64::max)
    }

    /// p-th percentile imbalance (0–100).
    pub fn percentile_imbalance(&self, p: f64) -> f64 {
        if self.epochs.is_empty() {
            return 1.0;
        }
        let mut v: Vec<f64> = self.epochs.iter().map(|e| e.imbalance()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Total migrations over the run.
    pub fn total_migrations(&self) -> usize {
        self.epochs.iter().map(|e| e.migrations).sum()
    }

    /// Total migration cost over the run.
    pub fn total_cost(&self) -> u64 {
        self.epochs.iter().map(|e| e.migration_cost).sum()
    }

    /// Serialize the full trace to JSON (for plotting pipelines).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Write the trace to a file as JSON.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Render the trace as CSV (`epoch,makespan,avg_load,migrations,cost`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,makespan,avg_load,migrations,migration_cost\n");
        for e in &self.epochs {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.epoch, e.makespan, e.avg_load, e.migrations, e.migration_cost
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport::new(
            "test",
            vec![
                EpochMetrics {
                    epoch: 0,
                    makespan: 10,
                    avg_load: 10,
                    migrations: 0,
                    migration_cost: 0,
                },
                EpochMetrics {
                    epoch: 1,
                    makespan: 20,
                    avg_load: 10,
                    migrations: 3,
                    migration_cost: 5,
                },
                EpochMetrics {
                    epoch: 2,
                    makespan: 15,
                    avg_load: 10,
                    migrations: 1,
                    migration_cost: 2,
                },
            ],
        )
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert!((r.mean_imbalance() - 1.5).abs() < 1e-9);
        assert!((r.max_imbalance() - 2.0).abs() < 1e-9);
        assert_eq!(r.total_migrations(), 4);
        assert_eq!(r.total_cost(), 7);
    }

    #[test]
    fn percentiles() {
        let r = report();
        assert!((r.percentile_imbalance(0.0) - 1.0).abs() < 1e-9);
        assert!((r.percentile_imbalance(100.0) - 2.0).abs() < 1e-9);
        assert!((r.percentile_imbalance(50.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_defaults() {
        let r = SimReport::new("x", vec![]);
        assert_eq!(r.mean_imbalance(), 1.0);
        assert_eq!(r.percentile_imbalance(50.0), 1.0);
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn percentile_on_empty_and_single_epoch() {
        let empty = SimReport::new("x", vec![]);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(empty.percentile_imbalance(p), 1.0);
        }

        let single = SimReport::new(
            "x",
            vec![EpochMetrics {
                epoch: 0,
                makespan: 30,
                avg_load: 10,
                migrations: 2,
                migration_cost: 4,
            }],
        );
        // With one epoch, every percentile is that epoch's imbalance.
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert!((single.percentile_imbalance(p) - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn decision_counters_record_and_total() {
        let mut d = DecisionCounters::default();
        d.record(0);
        d.record(3);
        d.record(0);
        d.record(1);
        assert_eq!(d.rebalanced, 2);
        assert_eq!(d.unchanged, 2);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn report_serde_round_trip() {
        let mut r = report();
        r.epoch_wall_nanos = vec![100, 250, 75];
        r.decisions.record(0);
        r.decisions.record(3);
        r.decisions.record(1);
        let json = r.to_json();
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn deserializes_reports_without_timing_fields() {
        // Reports written before epoch_wall_nanos/decisions existed must
        // still parse (the fields default).
        let json = r#"{"policy":"old","epochs":[]}"#;
        let r: SimReport = serde_json::from_str(json).unwrap();
        assert_eq!(r.policy, "old");
        assert!(r.epoch_wall_nanos.is_empty());
        assert_eq!(r.decisions, DecisionCounters::default());
    }

    #[test]
    fn json_and_csv_exports() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"makespan\": 20"));
        // Round-trips through serde_json's Value.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["policy"], "test");
        assert_eq!(v["epochs"].as_array().unwrap().len(), 3);

        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(2).unwrap().starts_with("1,20,10,3,5"));
    }

    #[test]
    fn imbalance_guards_zero_avg() {
        let e = EpochMetrics {
            epoch: 0,
            makespan: 5,
            avg_load: 0,
            migrations: 0,
            migration_cost: 0,
        };
        assert_eq!(e.imbalance(), 5.0);
    }
}
