//! Per-epoch and aggregate metrics for simulation runs.

use serde::Serialize;

/// Metrics of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EpochMetrics {
    /// Epoch index.
    pub epoch: usize,
    /// Makespan after rebalancing.
    pub makespan: u64,
    /// Average server load (ceiling), the per-epoch lower bound.
    pub avg_load: u64,
    /// Number of migrations performed this epoch.
    pub migrations: usize,
    /// Total migration cost this epoch.
    pub migration_cost: u64,
}

impl EpochMetrics {
    /// Imbalance = makespan / avg (≥ 1.0).
    pub fn imbalance(&self) -> f64 {
        self.makespan as f64 / self.avg_load.max(1) as f64
    }
}

/// A full simulation trace plus aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct SimReport {
    /// The policy that produced the trace.
    pub policy: String,
    /// Per-epoch metrics.
    pub epochs: Vec<EpochMetrics>,
}

impl SimReport {
    /// Mean imbalance across epochs.
    pub fn mean_imbalance(&self) -> f64 {
        if self.epochs.is_empty() {
            return 1.0;
        }
        self.epochs.iter().map(|e| e.imbalance()).sum::<f64>() / self.epochs.len() as f64
    }

    /// Worst imbalance across epochs.
    pub fn max_imbalance(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.imbalance())
            .fold(1.0, f64::max)
    }

    /// p-th percentile imbalance (0–100).
    pub fn percentile_imbalance(&self, p: f64) -> f64 {
        if self.epochs.is_empty() {
            return 1.0;
        }
        let mut v: Vec<f64> = self.epochs.iter().map(|e| e.imbalance()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// Total migrations over the run.
    pub fn total_migrations(&self) -> usize {
        self.epochs.iter().map(|e| e.migrations).sum()
    }

    /// Total migration cost over the run.
    pub fn total_cost(&self) -> u64 {
        self.epochs.iter().map(|e| e.migration_cost).sum()
    }

    /// Serialize the full trace to JSON (for plotting pipelines).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Write the trace to a file as JSON.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Render the trace as CSV (`epoch,makespan,avg_load,migrations,cost`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("epoch,makespan,avg_load,migrations,migration_cost\n");
        for e in &self.epochs {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.epoch, e.makespan, e.avg_load, e.migrations, e.migration_cost
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            policy: "test".into(),
            epochs: vec![
                EpochMetrics {
                    epoch: 0,
                    makespan: 10,
                    avg_load: 10,
                    migrations: 0,
                    migration_cost: 0,
                },
                EpochMetrics {
                    epoch: 1,
                    makespan: 20,
                    avg_load: 10,
                    migrations: 3,
                    migration_cost: 5,
                },
                EpochMetrics {
                    epoch: 2,
                    makespan: 15,
                    avg_load: 10,
                    migrations: 1,
                    migration_cost: 2,
                },
            ],
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert!((r.mean_imbalance() - 1.5).abs() < 1e-9);
        assert!((r.max_imbalance() - 2.0).abs() < 1e-9);
        assert_eq!(r.total_migrations(), 4);
        assert_eq!(r.total_cost(), 7);
    }

    #[test]
    fn percentiles() {
        let r = report();
        assert!((r.percentile_imbalance(0.0) - 1.0).abs() < 1e-9);
        assert!((r.percentile_imbalance(100.0) - 2.0).abs() < 1e-9);
        assert!((r.percentile_imbalance(50.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_defaults() {
        let r = SimReport {
            policy: "x".into(),
            epochs: vec![],
        };
        assert_eq!(r.mean_imbalance(), 1.0);
        assert_eq!(r.percentile_imbalance(50.0), 1.0);
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn json_and_csv_exports() {
        let r = report();
        let json = r.to_json();
        assert!(json.contains("\"makespan\": 20"));
        // Round-trips through serde_json's Value.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["policy"], "test");
        assert_eq!(v["epochs"].as_array().unwrap().len(), 3);

        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.lines().nth(2).unwrap().starts_with("1,20,10,3,5"));
    }

    #[test]
    fn imbalance_guards_zero_avg() {
        let e = EpochMetrics {
            epoch: 0,
            makespan: 5,
            avg_load: 0,
            migrations: 0,
            migration_cost: 0,
        };
        assert_eq!(e.imbalance(), 5.0);
    }
}
