//! Replay externally-recorded load traces through the simulator.
//!
//! The synthetic [`crate::workload`] models are good for controlled
//! experiments; real deployments have real measurements. A [`TraceWorkload`]
//! replays a CSV of per-epoch, per-site loads, so recorded production data
//! can drive the same policies and metrics as the synthetic farm.
//!
//! CSV format: one row per epoch, one column per site, integer loads:
//!
//! ```text
//! # site0,site1,site2
//! 10,20,30
//! 12,18,33
//! ```
//!
//! Blank lines and `#` comments are ignored. Every row must have the same
//! width.

use std::time::Instant;

use crate::metrics::{DecisionCounters, EpochMetrics, SimReport};
use crate::policy::Policy;
use lrb_core::model::{Budget, Instance, Job};

/// A recorded workload: per-epoch load vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceWorkload {
    epochs: Vec<Vec<u64>>,
}

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace has no data rows.
    Empty,
    /// A row's width differs from the first row's.
    RaggedRow {
        /// 1-based data-row number.
        row: usize,
        /// Cells found.
        got: usize,
        /// Cells expected.
        expected: usize,
    },
    /// A cell failed to parse as an integer.
    BadCell {
        /// 1-based data-row number.
        row: usize,
        /// 0-based column.
        col: usize,
        /// Offending text.
        text: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no data rows"),
            TraceError::RaggedRow { row, got, expected } => {
                write!(f, "row {row} has {got} cells, expected {expected}")
            }
            TraceError::BadCell { row, col, text } => {
                write!(f, "row {row} col {col}: '{text}' is not an integer")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceWorkload {
    /// Build from explicit per-epoch load vectors.
    pub fn new(epochs: Vec<Vec<u64>>) -> Result<Self, TraceError> {
        if epochs.is_empty() {
            return Err(TraceError::Empty);
        }
        let width = epochs[0].len();
        for (i, row) in epochs.iter().enumerate() {
            if row.len() != width {
                return Err(TraceError::RaggedRow {
                    row: i + 1,
                    got: row.len(),
                    expected: width,
                });
            }
        }
        Ok(TraceWorkload { epochs })
    }

    /// Parse the CSV format described in the module docs.
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut epochs = Vec::new();
        let mut row_no = 0usize;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            row_no += 1;
            let mut row = Vec::new();
            for (col, cell) in line.split(',').enumerate() {
                let cell = cell.trim();
                let v = cell.parse::<u64>().map_err(|_| TraceError::BadCell {
                    row: row_no,
                    col,
                    text: cell.to_string(),
                })?;
                row.push(v);
            }
            epochs.push(row);
        }
        Self::new(epochs)
    }

    /// Read a CSV trace from a file.
    pub fn from_csv_file(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_csv(&text).map_err(|e| e.to_string())
    }

    /// Number of epochs recorded.
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.epochs[0].len()
    }

    /// Loads of a given epoch.
    pub fn loads(&self, epoch: usize) -> &[u64] {
        &self.epochs[epoch]
    }
}

/// Replay a trace through a rebalancing policy: sites start on an LPT
/// placement of the first epoch's loads, then each recorded epoch updates
/// the loads and lets the policy migrate within `budget`. Unit migration
/// costs (the trace format records loads only).
pub fn replay(
    trace: &TraceWorkload,
    num_servers: usize,
    budget: Budget,
    policy: &mut dyn Policy,
) -> SimReport {
    assert!(num_servers > 0, "need at least one server");
    let mut placement = lrb_core::lpt::schedule(trace.loads(0), num_servers);
    let mut epochs = Vec::with_capacity(trace.num_epochs());
    let mut epoch_wall_nanos = Vec::with_capacity(trace.num_epochs());
    let mut decisions = DecisionCounters::default();

    for epoch in 0..trace.num_epochs() {
        let started = Instant::now();
        let loads = trace.loads(epoch);
        let jobs: Vec<Job> = loads.iter().map(|&l| Job::unit(l)).collect();
        let inst = Instance::new(jobs, placement.clone(), num_servers)
            .expect("trace replay state is a valid instance");
        let new_assignment = policy.rebalance(&inst, budget);
        let makespan = inst
            .makespan_of(&new_assignment)
            .expect("policy returned malformed assignment");
        let unlimited = policy.name() == "full-rebalance";
        assert!(
            unlimited || budget.allows(&inst, &new_assignment),
            "policy {} exceeded the budget",
            policy.name()
        );
        let migrations = inst.move_count(&new_assignment);
        epochs.push(EpochMetrics {
            epoch,
            makespan,
            avg_load: inst.avg_load_ceil(),
            migrations,
            migration_cost: inst.move_cost(&new_assignment),
        });
        placement = new_assignment;
        decisions.record(migrations);
        epoch_wall_nanos.push((started.elapsed().as_nanos() as u64).max(1));
    }

    SimReport {
        policy: policy.name().to_string(),
        epochs,
        epoch_wall_nanos,
        decisions,
        degradation: Default::default(),
        provenance: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MPartitionPolicy, NoRebalance};

    const CSV: &str = "\
# three sites
10,20,30
40,20,30

15,25,35
";

    #[test]
    fn parses_csv_with_comments_and_blanks() {
        let t = TraceWorkload::from_csv(CSV).unwrap();
        assert_eq!(t.num_epochs(), 3);
        assert_eq!(t.num_sites(), 3);
        assert_eq!(t.loads(1), &[40, 20, 30]);
    }

    #[test]
    fn rejects_malformed_traces() {
        assert_eq!(
            TraceWorkload::from_csv("# only comments\n").unwrap_err(),
            TraceError::Empty
        );
        assert!(matches!(
            TraceWorkload::from_csv("1,2\n1,2,3\n").unwrap_err(),
            TraceError::RaggedRow {
                row: 2,
                got: 3,
                expected: 2
            }
        ));
        assert!(matches!(
            TraceWorkload::from_csv("1,x\n").unwrap_err(),
            TraceError::BadCell { row: 1, col: 1, .. }
        ));
    }

    #[test]
    fn replay_enforces_budget_and_tracks_metrics() {
        let t = TraceWorkload::from_csv(CSV).unwrap();
        let r = replay(&t, 2, Budget::Moves(1), &mut MPartitionPolicy);
        assert_eq!(r.epochs.len(), 3);
        for e in &r.epochs {
            assert!(e.migrations <= 1, "epoch {}", e.epoch);
            assert!(e.makespan >= e.avg_load);
        }
    }

    #[test]
    fn replay_with_no_policy_never_moves() {
        let t = TraceWorkload::from_csv(CSV).unwrap();
        let r = replay(&t, 2, Budget::Moves(5), &mut NoRebalance);
        assert_eq!(r.total_migrations(), 0);
    }

    #[test]
    fn rebalancing_tracks_a_load_spike() {
        // Site 0 spikes at epoch 1; one move should chase it.
        let t = TraceWorkload::new(vec![
            vec![10, 10, 10, 10],
            vec![100, 10, 10, 10],
            vec![100, 10, 10, 10],
        ])
        .unwrap();
        let fixed = replay(&t, 2, Budget::Moves(2), &mut MPartitionPolicy);
        let drift = replay(&t, 2, Budget::Moves(0), &mut NoRebalance);
        assert!(fixed.mean_imbalance() <= drift.mean_imbalance());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("lrb-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, CSV).unwrap();
        let t = TraceWorkload::from_csv_file(&path).unwrap();
        assert_eq!(t.num_epochs(), 3);
        std::fs::remove_file(&path).ok();
        assert!(TraceWorkload::from_csv_file("/missing/t.csv").is_err());
    }
}
