//! Process-migration simulator: the multiprocessor scenario of the paper's
//! introduction (process migration à la Harchol-Balter & Downey \[6\],
//! Rudolph et al. \[13\]).
//!
//! Processes arrive over time on random CPUs, run for heavy-tailed
//! lifetimes, and depart. Without migration, random arrivals plus
//! heavy-tailed lifetimes leave CPUs persistently unbalanced; a bounded
//! per-epoch migration budget (the paper's `k`) lets a policy chase the
//! imbalance. Migration cost is the process's memory footprint, exercising
//! the arbitrary-cost model (§3.2).

use std::time::Instant;

use lrb_core::model::{Budget, Instance, Job};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{DecisionCounters, EpochMetrics, SimReport};
use crate::policy::Policy;

/// Parameters of the process-migration simulation.
#[derive(Debug, Clone, Copy)]
pub struct ProcessSimConfig {
    /// Number of CPUs.
    pub num_cpus: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Expected number of arrivals per epoch.
    pub arrivals_per_epoch: f64,
    /// Pareto shape for lifetimes (smaller = heavier tail); the classic
    /// process-lifetime measurements suggest ≈ 1.
    pub lifetime_alpha: f64,
    /// Minimum lifetime in epochs.
    pub lifetime_min: u64,
    /// CPU demand of a process is uniform in `[1, demand_max]`.
    pub demand_max: u64,
    /// Memory footprint (= migration cost) is uniform in `[1, mem_max]`.
    pub mem_max: u64,
    /// Per-epoch migration budget.
    pub budget: Budget,
    /// RNG seed.
    pub seed: u64,
}

impl ProcessSimConfig {
    /// A default CPU farm: 8 CPUs, moderate churn, heavy-tailed lifetimes.
    pub fn default_cpu_farm() -> Self {
        ProcessSimConfig {
            num_cpus: 8,
            epochs: 150,
            arrivals_per_epoch: 6.0,
            lifetime_alpha: 1.1,
            lifetime_min: 2,
            demand_max: 20,
            mem_max: 10,
            budget: Budget::Cost(20),
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Process {
    demand: u64,
    mem: u64,
    remaining: u64,
    cpu: usize,
}

/// Run the process-migration simulation with a policy.
pub fn run(cfg: &ProcessSimConfig, policy: &mut dyn Policy) -> SimReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut procs: Vec<Process> = Vec::new();
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut epoch_wall_nanos = Vec::with_capacity(cfg.epochs);
    let mut decisions = DecisionCounters::default();

    for epoch in 0..cfg.epochs {
        let started = Instant::now();
        // Departures.
        for p in &mut procs {
            p.remaining = p.remaining.saturating_sub(1);
        }
        procs.retain(|p| p.remaining > 0);

        // Arrivals (Poisson-ish: floor + Bernoulli on the fraction).
        let whole = cfg.arrivals_per_epoch.floor() as usize;
        let frac = cfg.arrivals_per_epoch - whole as f64;
        let count = whole + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)));
        for _ in 0..count {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let lifetime = ((cfg.lifetime_min as f64) * u.powf(-1.0 / cfg.lifetime_alpha))
                .round()
                .min(1e6) as u64;
            procs.push(Process {
                demand: rng.gen_range(1..=cfg.demand_max),
                mem: rng.gen_range(1..=cfg.mem_max),
                remaining: lifetime.max(cfg.lifetime_min),
                cpu: rng.gen_range(0..cfg.num_cpus),
            });
        }

        // Snapshot as an instance (jobs in `procs` order) and rebalance.
        let jobs: Vec<Job> = procs
            .iter()
            .map(|p| Job::with_cost(p.demand, p.mem))
            .collect();
        let initial = procs.iter().map(|p| p.cpu).collect();
        let inst = Instance::new(jobs, initial, cfg.num_cpus)
            .expect("simulator state is a valid instance");
        let new_assignment = policy.rebalance(&inst, cfg.budget);
        let makespan = inst
            .makespan_of(&new_assignment)
            .expect("policy returned malformed assignment");
        let unlimited = policy.name() == "full-rebalance";
        assert!(
            unlimited || cfg.budget.allows(&inst, &new_assignment),
            "policy {} exceeded the budget",
            policy.name()
        );

        let migrations = inst.move_count(&new_assignment);
        let migration_cost = inst.move_cost(&new_assignment);
        for (p, &cpu) in procs.iter_mut().zip(&new_assignment) {
            p.cpu = cpu;
        }

        epochs.push(EpochMetrics {
            epoch,
            makespan,
            avg_load: inst.avg_load_ceil(),
            migrations,
            migration_cost,
        });
        decisions.record(migrations);
        epoch_wall_nanos.push((started.elapsed().as_nanos() as u64).max(1));
    }

    SimReport {
        policy: policy.name().to_string(),
        epochs,
        epoch_wall_nanos,
        decisions,
        degradation: Default::default(),
        provenance: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MPartitionPolicy, NoRebalance};

    fn cfg() -> ProcessSimConfig {
        let mut c = ProcessSimConfig::default_cpu_farm();
        c.epochs = 60;
        c
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cfg();
        let a = run(&c, &mut MPartitionPolicy);
        let b = run(&c, &mut MPartitionPolicy);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn cost_budget_respected() {
        let c = cfg();
        let r = run(&c, &mut MPartitionPolicy);
        for e in &r.epochs {
            assert!(
                e.migration_cost <= 20,
                "epoch {}: cost {}",
                e.epoch,
                e.migration_cost
            );
        }
    }

    #[test]
    fn migration_beats_no_migration() {
        let c = cfg();
        let drift = run(&c, &mut NoRebalance);
        let managed = run(&c, &mut MPartitionPolicy);
        assert!(
            managed.mean_imbalance() <= drift.mean_imbalance(),
            "managed {} vs drift {}",
            managed.mean_imbalance(),
            drift.mean_imbalance()
        );
    }

    #[test]
    fn population_fluctuates_but_sim_stays_valid() {
        let mut c = cfg();
        c.arrivals_per_epoch = 0.4; // sparse arrivals: sometimes zero procs
        let r = run(&c, &mut MPartitionPolicy);
        assert_eq!(r.epochs.len(), c.epochs);
    }
}
