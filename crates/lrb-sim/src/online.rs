//! Online (streaming) farm simulation: arrivals, departures, and banked
//! rebalancing budgets.
//!
//! The batch simulators ([`crate::farm`]) refresh a *fixed* site population
//! each epoch; here the population itself churns. An [`OnlineWorkload`]
//! generates a seeded event stream — Poisson-ish arrivals with heavy-tailed
//! sizes, geometric departure lifetimes — and [`run_farm_online`] drives an
//! [`OnlineRebalancer`] through it: each epoch applies the churn, then
//! issues one `Rebalance` event whose effective budget is clamped by the
//! rebalancer's amortized move bank.
//!
//! Three drivers share the same per-epoch accounting:
//!
//! * [`run_farm_online`] / [`run_farm_online_recorded`] — one farm, solved
//!   inline by the rebalancer (warm incremental ladder).
//! * [`run_farm_online_faulty`] — the same, under an `lrb-faults` plan:
//!   crashed servers are evacuated (billed to the bank) and solves are
//!   projected onto surviving servers. The event stream is authoritative —
//!   the online controller knows its own state — so report-corruption
//!   faults (stale / dropped / perturbed loads) do not apply; outages and
//!   solver exhaustion do. A fault-free plan takes the clean code path and
//!   is bit-identical to [`run_farm_online_recorded`].
//! * [`run_online_fleet`] — many farms in lockstep epochs through a
//!   [`StreamEngine`]; per-farm traces are bit-identical to the solo runs
//!   at any engine thread count (the engine changes wall-clock, never
//!   answers).

use std::time::Instant;

use lrb_core::model::{Budget, Instance, Job};
use lrb_core::online::{BankConfig, Event, JobKey, OnlineRebalancer, OnlineStats};
use lrb_core::{cost_partition, mpartition};
use lrb_engine::{BatchItem, BatchSolver, EngineConfig, StreamEngine};
use lrb_faults::FaultPlan;
use lrb_instances::SizeDistribution;
use lrb_obs::{names, NoopRecorder, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{DecisionCounters, DegradationMetrics, EpochMetrics, SimReport};

/// Parameters of one online farm: its churn model, budget, and bank.
#[derive(Debug, Clone, Copy)]
pub struct OnlineWorkloadConfig {
    /// Number of servers.
    pub num_procs: usize,
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Jobs present before the first epoch (arrive on seeded random servers).
    pub initial_jobs: usize,
    /// Mean arrivals per epoch (Poisson-distributed count).
    pub arrival_rate: f64,
    /// Mean job lifetime in epochs (geometric: each live job departs with
    /// probability `1 / mean_lifetime` per epoch). Values `< 1` are treated
    /// as 1.
    pub mean_lifetime: f64,
    /// Job-size distribution (heavy-tailed by default).
    pub sizes: SizeDistribution,
    /// Budget requested at each epoch's rebalance (the bank may grant less).
    pub budget: Budget,
    /// Amortized move-bank policy.
    pub bank: BankConfig,
    /// RNG seed for the event stream.
    pub seed: u64,
}

impl OnlineWorkloadConfig {
    /// A default online farm: Pareto sizes, ~6 arrivals and ~25-epoch
    /// lifetimes, 4 moves requested per epoch against a defaulted bank.
    pub fn default_online(num_procs: usize) -> Self {
        OnlineWorkloadConfig {
            num_procs,
            epochs: 100,
            initial_jobs: 8 * num_procs,
            arrival_rate: 6.0,
            mean_lifetime: 25.0,
            sizes: SizeDistribution::Pareto {
                scale: 4,
                alpha: 1.5,
            },
            budget: Budget::Moves(4),
            bank: BankConfig::default(),
            seed: 0,
        }
    }
}

/// Seeded generator of arrival/departure events.
///
/// Within an epoch, departures are emitted first (in ascending key order
/// over the jobs live at the epoch's start), then arrivals (with fresh,
/// monotonically increasing keys). The epoch's `Rebalance` event is issued
/// by the driver, not the generator, so tests can permute the churn events
/// freely without touching the solve.
///
/// This is the *stochastic* (Poisson churn) end of the arrival spectrum;
/// the worst-case end — random-order and adaptive adversarial streams for
/// the competitive lab — lives in [`crate::adversary`].
#[derive(Debug, Clone)]
pub struct OnlineWorkload {
    cfg: OnlineWorkloadConfig,
    rng: StdRng,
    next_key: JobKey,
    /// Live keys, ascending (kept in lockstep with the rebalancer).
    live: Vec<JobKey>,
}

impl OnlineWorkload {
    /// A generator for `cfg`'s stream.
    pub fn new(cfg: OnlineWorkloadConfig) -> Self {
        OnlineWorkload {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            next_key: 0,
            live: Vec::new(),
        }
    }

    /// The `initial_jobs` arrivals that populate the farm before epoch 0.
    pub fn initial_events(&mut self) -> Vec<Event> {
        (0..self.cfg.initial_jobs)
            .map(|_| self.one_arrival())
            .collect()
    }

    /// One epoch's churn: departures of the currently live jobs, then fresh
    /// arrivals. Does not include the epoch's `Rebalance` event.
    pub fn epoch_events(&mut self) -> Vec<Event> {
        let mut events = Vec::new();
        let depart_p = 1.0 / self.cfg.mean_lifetime.max(1.0);
        let mut kept = Vec::with_capacity(self.live.len());
        for &key in &std::mem::take(&mut self.live) {
            if self.rng.gen_bool(depart_p) {
                events.push(Event::Depart { key });
            } else {
                kept.push(key);
            }
        }
        self.live = kept;
        let arrivals = poisson(&mut self.rng, self.cfg.arrival_rate);
        for _ in 0..arrivals {
            events.push(self.one_arrival());
        }
        events
    }

    /// Keys currently live from the generator's point of view.
    pub fn live_keys(&self) -> &[JobKey] {
        &self.live
    }

    fn one_arrival(&mut self) -> Event {
        let key = self.next_key;
        self.next_key += 1;
        self.live.push(key);
        let size = self.cfg.sizes.sample(&mut self.rng).max(1);
        let proc = self.rng.gen_range(0..self.cfg.num_procs);
        Event::Arrive {
            key,
            job: Job::unit(size),
            proc,
        }
    }
}

/// Knuth's Poisson sampler; fine for the per-epoch rates used here.
fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Trace of one online run: the standard epoch metrics plus the online
/// bookkeeping (event counters, banked balances, churn curve).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineRunReport {
    /// Epoch metrics, decisions, and (under faults) degradation aggregates.
    pub sim: SimReport,
    /// Event/solver counters from the rebalancer. In fleet mode the
    /// incremental/full-rebuild split is reported by the engine instead and
    /// stays zero here.
    pub stats: OnlineStats,
    /// Bank balance after each epoch's rebalance.
    pub banked_per_epoch: Vec<u64>,
    /// Arrivals applied in each epoch.
    pub arrivals_per_epoch: Vec<usize>,
    /// Departures applied in each epoch.
    pub departures_per_epoch: Vec<usize>,
    /// Per-server loads after the final epoch.
    pub final_loads: Vec<u64>,
}

/// Per-epoch record book shared by the three drivers.
#[derive(Debug, Default)]
struct OnlineTrace {
    epochs: Vec<EpochMetrics>,
    epoch_wall_nanos: Vec<u64>,
    decisions: DecisionCounters,
    banked_per_epoch: Vec<u64>,
    arrivals_per_epoch: Vec<usize>,
    departures_per_epoch: Vec<usize>,
}

impl OnlineTrace {
    fn with_capacity(epochs: usize) -> Self {
        OnlineTrace {
            epochs: Vec::with_capacity(epochs),
            epoch_wall_nanos: Vec::with_capacity(epochs),
            decisions: DecisionCounters::default(),
            banked_per_epoch: Vec::with_capacity(epochs),
            arrivals_per_epoch: Vec::with_capacity(epochs),
            departures_per_epoch: Vec::with_capacity(epochs),
        }
    }

    fn into_report(
        self,
        policy: &str,
        degradation: DegradationMetrics,
        provenance: Vec<String>,
        rebalancer: &OnlineRebalancer,
    ) -> OnlineRunReport {
        OnlineRunReport {
            sim: SimReport {
                policy: policy.to_string(),
                epochs: self.epochs,
                epoch_wall_nanos: self.epoch_wall_nanos,
                decisions: self.decisions,
                degradation,
                provenance,
            },
            stats: *rebalancer.stats(),
            banked_per_epoch: self.banked_per_epoch,
            arrivals_per_epoch: self.arrivals_per_epoch,
            departures_per_epoch: self.departures_per_epoch,
            final_loads: rebalancer.loads().to_vec(),
        }
    }
}

/// Policy label for a budget kind.
fn policy_name(budget: Budget) -> &'static str {
    match budget {
        Budget::Moves(_) => "online-mpartition",
        Budget::Cost(_) => "online-cost-partition",
    }
}

/// Apply a slice of churn events to the rebalancer, counting churn and
/// (when enabled) per-event latencies.
fn apply_churn<R: Recorder>(
    rebalancer: &mut OnlineRebalancer,
    events: &[Event],
    rec: &R,
) -> (usize, usize) {
    let mut arrivals = 0usize;
    let mut departures = 0usize;
    for &event in events {
        let start = R::ENABLED.then(Instant::now);
        rebalancer
            .apply(event)
            .expect("generated event streams are always valid");
        if let Some(start) = start {
            rec.observe(
                names::ONLINE_EVENT_NANOS,
                (start.elapsed().as_nanos() as u64).max(1),
            );
        }
        match event {
            Event::Arrive { .. } => arrivals += 1,
            Event::Depart { .. } => departures += 1,
            Event::Rebalance { .. } => {}
        }
    }
    (arrivals, departures)
}

/// Flush the rebalancer's counters to the `online.*` metrics.
fn record_stats<R: Recorder>(stats: &OnlineStats, rec: &R) {
    rec.incr(names::ONLINE_EVENTS, stats.events);
    rec.incr(names::ONLINE_ARRIVALS, stats.arrivals);
    rec.incr(names::ONLINE_DEPARTURES, stats.departures);
    rec.incr(names::ONLINE_REBALANCES, stats.rebalances);
    rec.incr(names::ONLINE_INCREMENTAL, stats.incremental_updates);
    rec.incr(names::ONLINE_REBUILDS, stats.full_rebuilds);
    rec.incr(names::ONLINE_MOVES, stats.moves_performed);
}

/// Run one online farm with the default (uninstrumented) recorder.
pub fn run_farm_online(cfg: &OnlineWorkloadConfig) -> OnlineRunReport {
    run_farm_online_recorded(cfg, &NoopRecorder)
}

/// [`run_farm_online`] with instrumentation: emits the `online.*` counters
/// and histograms named in [`lrb_obs::names`] alongside the usual `sim.*`
/// epoch counters.
pub fn run_farm_online_recorded<R: Recorder>(
    cfg: &OnlineWorkloadConfig,
    rec: &R,
) -> OnlineRunReport {
    let mut rebalancer =
        OnlineRebalancer::new(cfg.num_procs, cfg.bank).expect("online farm has servers");
    let mut workload = OnlineWorkload::new(*cfg);
    apply_churn(&mut rebalancer, &workload.initial_events(), rec);
    let mut trace = OnlineTrace::with_capacity(cfg.epochs);

    for epoch in 0..cfg.epochs {
        let started = Instant::now();
        let (arrivals, departures) = apply_churn(&mut rebalancer, &workload.epoch_events(), rec);
        let inst = rebalancer.instance();
        let step = rebalancer
            .rebalance(cfg.budget)
            .expect("online rebalance over a valid snapshot");
        debug_assert!(step.effective.allows(&inst, rebalancer.assignment()));

        trace.epochs.push(EpochMetrics {
            epoch,
            makespan: step.outcome.makespan(),
            avg_load: inst.avg_load_ceil(),
            migrations: step.outcome.moves(),
            migration_cost: step.outcome.cost(),
        });
        trace.decisions.record(step.outcome.moves());
        trace.banked_per_epoch.push(step.banked_after);
        trace.arrivals_per_epoch.push(arrivals);
        trace.departures_per_epoch.push(departures);

        let nanos = (started.elapsed().as_nanos() as u64).max(1);
        trace.epoch_wall_nanos.push(nanos);
        rec.incr(names::SIM_EPOCHS, 1);
        rec.incr(
            if step.outcome.moves() > 0 {
                names::SIM_REBALANCED
            } else {
                names::SIM_UNCHANGED
            },
            1,
        );
        rec.observe(names::SIM_EPOCH_NANOS, nanos);
        rec.record_duration(names::SIM_EPOCH, nanos);
        rec.observe(names::ONLINE_BANKED, step.banked_after);
    }

    record_stats(rebalancer.stats(), rec);
    trace.into_report(
        policy_name(cfg.budget),
        DegradationMetrics::default(),
        Vec::new(),
        &rebalancer,
    )
}

/// [`run_farm_online_faulty_recorded`] without instrumentation.
pub fn run_farm_online_faulty(cfg: &OnlineWorkloadConfig, plan: &FaultPlan) -> OnlineRunReport {
    run_farm_online_faulty_recorded(cfg, plan, &NoopRecorder)
}

/// Run one online farm under a fault plan.
///
/// Each epoch: churn is applied, jobs stranded on crashed servers are
/// force-moved to the least-loaded surviving server (each evacuation billed
/// to the move bank), the solve is projected onto the surviving servers,
/// and the answer is committed only if well-formed and within the effective
/// budget — otherwise the evacuated placement stands and the epoch counts
/// as a policy rejection. Epochs whose plan declares the solver budget
/// exhausted skip the solve entirely (no rebalance event, no accrual). A
/// fault-free plan takes the exact clean code path, so its report is
/// bit-identical to [`run_farm_online_recorded`].
pub fn run_farm_online_faulty_recorded<R: Recorder>(
    cfg: &OnlineWorkloadConfig,
    plan: &FaultPlan,
    rec: &R,
) -> OnlineRunReport {
    if plan.is_fault_free() {
        return run_farm_online_recorded(cfg, rec);
    }
    assert_eq!(
        plan.num_procs(),
        cfg.num_procs,
        "fault plan covers {} processors but the farm has {} servers",
        plan.num_procs(),
        cfg.num_procs
    );

    let mut rebalancer =
        OnlineRebalancer::new(cfg.num_procs, cfg.bank).expect("online farm has servers");
    let mut workload = OnlineWorkload::new(*cfg);
    apply_churn(&mut rebalancer, &workload.initial_events(), rec);
    let mut trace = OnlineTrace::with_capacity(cfg.epochs);
    let mut degradation = DegradationMetrics::default();
    let mut provenance = Vec::with_capacity(cfg.epochs);
    let mut regret_sum = 0.0f64;

    for epoch in 0..cfg.epochs {
        let started = Instant::now();
        let (arrivals, departures) = apply_churn(&mut rebalancer, &workload.epoch_events(), rec);
        let faults = plan.epoch(epoch);
        let up: Vec<usize> = (0..cfg.num_procs).filter(|&p| !faults.down[p]).collect();

        // 1) Evacuate jobs off crashed servers, billing the bank per job.
        let stranded: Vec<JobKey> = rebalancer
            .keys()
            .iter()
            .copied()
            .filter(|&key| faults.down[rebalancer.proc_of(key).expect("live key")])
            .collect();
        let mut forced_cost = 0u64;
        for key in &stranded {
            let &to = up
                .iter()
                .min_by_key(|&&p| rebalancer.loads()[p])
                .expect("fault plans keep at least one processor up");
            let job = *rebalancer.job(*key).expect("live key");
            rebalancer.force_move(*key, to).expect("valid evacuation");
            let units = match cfg.budget {
                Budget::Moves(_) => 1,
                Budget::Cost(_) => job.cost,
            };
            rebalancer.bill(units);
            forced_cost = forced_cost.saturating_add(job.cost);
        }
        let forced_moves = stranded.len();

        // 2) Solve projected onto surviving servers (unless exhausted).
        let mut policy_moves = 0usize;
        let mut policy_cost = 0u64;
        let mut rejected = false;
        let mut banked_after = rebalancer.bank().balance();
        if !faults.solver_exhausted {
            let effective = rebalancer.begin_rebalance(cfg.budget);
            let mut up_index = vec![usize::MAX; cfg.num_procs];
            for (q, &p) in up.iter().enumerate() {
                up_index[p] = q;
            }
            let keys = rebalancer.keys().to_vec();
            let proj_jobs: Vec<Job> = keys
                .iter()
                .map(|&k| *rebalancer.job(k).expect("live key"))
                .collect();
            let proj_init: Vec<usize> = keys
                .iter()
                .map(|&k| up_index[rebalancer.proc_of(k).expect("live key")])
                .collect();
            let proj_inst = Instance::new(proj_jobs, proj_init, up.len())
                .expect("evacuated placement lives on up servers");
            let solved = match effective {
                Budget::Moves(k) => {
                    mpartition::rebalance(&proj_inst, k).map(|run| run.outcome.into_assignment())
                }
                Budget::Cost(b) => cost_partition::rebalance(&proj_inst, b)
                    .map(|run| run.outcome.into_assignment()),
            };
            match solved {
                Ok(proj_asg) => {
                    let mapped: Vec<usize> = proj_asg.iter().map(|&q| up[q]).collect();
                    match rebalancer.commit_assignment(&mapped, effective) {
                        Ok(commit) => {
                            policy_moves = commit.moves as usize;
                            policy_cost = commit.cost;
                        }
                        Err(_) => rejected = true,
                    }
                }
                Err(_) => rejected = true,
            }
            banked_after = rebalancer.bank().balance();
        }

        // 3) Metrics over the true state.
        let live_sizes: Vec<u64> = rebalancer
            .keys()
            .iter()
            .map(|&k| rebalancer.job(k).expect("live key").size)
            .collect();
        let total: u64 = live_sizes.iter().fold(0u64, |a, &s| a.saturating_add(s));
        let avg_load = total.div_ceil(up.len() as u64).max(1);
        let makespan = rebalancer.makespan();
        let oracle = crate::farm::lpt_makespan(&live_sizes, up.len()).max(1);
        regret_sum += (makespan as f64 / oracle as f64 - 1.0).max(0.0);

        let tier = if rejected { "rejected" } else { "policy" };
        let degraded = forced_moves > 0 || rejected || faults.solver_exhausted;
        degradation.epochs_degraded += u64::from(degraded);
        degradation.forced_migrations += forced_moves as u64;
        degradation.forced_migration_cost = degradation
            .forced_migration_cost
            .saturating_add(forced_cost);
        degradation.policy_rejections += u64::from(rejected);
        degradation.budget_exhausted_epochs += u64::from(faults.solver_exhausted);
        provenance.push(tier.to_string());

        let migrations = forced_moves + policy_moves;
        trace.epochs.push(EpochMetrics {
            epoch,
            makespan,
            avg_load,
            migrations,
            migration_cost: forced_cost.saturating_add(policy_cost),
        });
        trace.decisions.record(migrations);
        trace.banked_per_epoch.push(banked_after);
        trace.arrivals_per_epoch.push(arrivals);
        trace.departures_per_epoch.push(departures);

        let nanos = (started.elapsed().as_nanos() as u64).max(1);
        trace.epoch_wall_nanos.push(nanos);
        rec.incr(names::SIM_EPOCHS, 1);
        rec.incr(
            if migrations > 0 {
                names::SIM_REBALANCED
            } else {
                names::SIM_UNCHANGED
            },
            1,
        );
        rec.observe(names::SIM_EPOCH_NANOS, nanos);
        rec.record_duration(names::SIM_EPOCH, nanos);
        rec.observe(names::ONLINE_BANKED, banked_after);
        if degraded {
            rec.incr(names::SIM_DEGRADED_EPOCHS, 1);
        }
        if forced_moves > 0 {
            rec.incr(names::SIM_FORCED_MIGRATIONS, forced_moves as u64);
        }
        if rejected {
            rec.incr(names::SIM_POLICY_REJECTIONS, 1);
        }
    }

    degradation.mean_oracle_regret = if cfg.epochs > 0 {
        regret_sum / cfg.epochs as f64
    } else {
        0.0
    };
    record_stats(rebalancer.stats(), rec);
    trace.into_report(
        policy_name(cfg.budget),
        degradation,
        provenance,
        &rebalancer,
    )
}

/// A set of online farms streamed in lockstep through a [`StreamEngine`].
#[derive(Debug, Clone)]
pub struct OnlineFleetConfig {
    /// The farms; they may differ in every parameter (shorter farms simply
    /// finish early).
    pub farms: Vec<OnlineWorkloadConfig>,
    /// Engine worker threads; `0` = available parallelism.
    pub threads: usize,
}

/// Run every online farm in lockstep epochs through the streaming engine.
pub fn run_online_fleet(cfg: &OnlineFleetConfig) -> Vec<OnlineRunReport> {
    run_online_fleet_recorded(cfg, &NoopRecorder)
}

/// [`run_online_fleet`] with instrumentation.
///
/// Each global epoch gathers every still-running farm's post-churn snapshot
/// (with its bank-clamped effective budget) into one engine batch. Because
/// the engine is bit-identical to the sequential solvers at any thread
/// count, and the bank accounting runs through the same
/// `begin_rebalance` / `commit_assignment` pair the solo driver uses, each
/// farm's trace — epoch metrics, banked balances, final loads — matches its
/// [`run_farm_online_recorded`] run exactly. Per-farm epoch indices are the
/// farm's own contiguous `0..epochs` count (asserted below), regardless of
/// how farms interleave in the global loop. The one divergence is
/// telemetry: the incremental/full-rebuild split lives in the engine's
/// ladder counters in fleet mode, so [`OnlineRunReport::stats`] reports
/// zero for those two fields.
pub fn run_online_fleet_recorded<R: Recorder + Sync>(
    cfg: &OnlineFleetConfig,
    rec: &R,
) -> Vec<OnlineRunReport> {
    struct FarmState {
        rebalancer: OnlineRebalancer,
        workload: OnlineWorkload,
        trace: OnlineTrace,
    }

    let mut farms: Vec<FarmState> = cfg
        .farms
        .iter()
        .map(|fc| {
            let mut rebalancer =
                OnlineRebalancer::new(fc.num_procs, fc.bank).expect("online farm has servers");
            let mut workload = OnlineWorkload::new(*fc);
            apply_churn(&mut rebalancer, &workload.initial_events(), rec);
            FarmState {
                rebalancer,
                workload,
                trace: OnlineTrace::with_capacity(fc.epochs),
            }
        })
        .collect();

    let max_epochs = cfg.farms.iter().map(|f| f.epochs).max().unwrap_or(0);
    let mut engine = StreamEngine::new(
        BatchSolver::MPartition,
        &EngineConfig::with_threads(cfg.threads),
    );

    for epoch in 0..max_epochs {
        // The clock feeds lockstep-epoch telemetry only.
        let lockstep_started = R::ENABLED.then(Instant::now);
        let mut active: Vec<usize> = Vec::new();
        let mut items: Vec<BatchItem> = Vec::new();
        let mut effectives: Vec<Budget> = Vec::new();
        let mut churn: Vec<(usize, usize)> = Vec::new();
        for (i, fc) in cfg.farms.iter().enumerate() {
            if epoch >= fc.epochs {
                continue;
            }
            let state = &mut farms[i];
            churn.push(apply_churn(
                &mut state.rebalancer,
                &state.workload.epoch_events(),
                rec,
            ));
            let effective = state.rebalancer.begin_rebalance(fc.budget);
            items.push(BatchItem {
                instance: state.rebalancer.instance(),
                budget: effective,
            });
            effectives.push(effective);
            active.push(i);
        }
        if items.is_empty() {
            break;
        }

        let batch = engine.solve_epoch_recorded(&items, rec);

        for (slot, &i) in active.iter().enumerate() {
            let state = &mut farms[i];
            let inst = &items[slot].instance;
            let commit = state
                .rebalancer
                .commit_assignment(batch.outcomes[slot].assignment(), effectives[slot])
                .expect("engine answers respect the effective budget");

            // Per-farm epoch indices are this farm's own count, contiguous
            // from 0 — not the global loop index (they coincide only
            // because every farm starts at the same tick).
            let farm_epoch = state.trace.epochs.len();
            debug_assert_eq!(farm_epoch, epoch);
            state.trace.epochs.push(EpochMetrics {
                epoch: farm_epoch,
                makespan: batch.outcomes[slot].makespan(),
                avg_load: inst.avg_load_ceil(),
                migrations: commit.moves as usize,
                migration_cost: commit.cost,
            });
            state.trace.decisions.record(commit.moves as usize);
            state
                .trace
                .banked_per_epoch
                .push(state.rebalancer.bank().balance());
            state.trace.arrivals_per_epoch.push(churn[slot].0);
            state.trace.departures_per_epoch.push(churn[slot].1);

            let nanos = batch.solve_nanos[slot].max(1);
            state.trace.epoch_wall_nanos.push(nanos);
            rec.incr(names::SIM_EPOCHS, 1);
            rec.incr(
                if commit.moves > 0 {
                    names::SIM_REBALANCED
                } else {
                    names::SIM_UNCHANGED
                },
                1,
            );
            rec.observe(names::SIM_EPOCH_NANOS, nanos);
            rec.observe(names::ONLINE_BANKED, state.rebalancer.bank().balance());
        }
        if let Some(started) = lockstep_started {
            rec.record_duration(
                names::SIM_FLEET_EPOCH,
                (started.elapsed().as_nanos() as u64).max(1),
            );
        }
    }

    for state in &farms {
        record_stats(state.rebalancer.stats(), rec);
        for (e, m) in state.trace.epochs.iter().enumerate() {
            assert_eq!(m.epoch, e, "per-farm epoch indices must be contiguous");
        }
    }
    farms
        .into_iter()
        .zip(&cfg.farms)
        .map(|(state, fc)| {
            let rebalancer = state.rebalancer;
            state.trace.into_report(
                policy_name(fc.budget),
                DegradationMetrics::default(),
                Vec::new(),
                &rebalancer,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert two runs are identical up to wall-clock timings.
    fn assert_same_trace(a: &OnlineRunReport, b: &OnlineRunReport) {
        let strip = |r: &OnlineRunReport| {
            let mut r = r.clone();
            r.sim.epoch_wall_nanos.clear();
            r
        };
        assert_eq!(strip(a), strip(b));
    }

    fn cfg() -> OnlineWorkloadConfig {
        let mut c = OnlineWorkloadConfig::default_online(4);
        c.epochs = 30;
        c.initial_jobs = 20;
        c.seed = 11;
        c
    }

    #[test]
    fn workload_is_deterministic_and_keys_never_repeat_while_live() {
        let mut a = OnlineWorkload::new(cfg());
        let mut b = OnlineWorkload::new(cfg());
        assert_eq!(a.initial_events(), b.initial_events());
        for _ in 0..10 {
            assert_eq!(a.epoch_events(), b.epoch_events());
        }
        let mut live = std::collections::HashSet::new();
        let mut w = OnlineWorkload::new(cfg());
        for e in w.initial_events() {
            if let Event::Arrive { key, .. } = e {
                assert!(live.insert(key));
            }
        }
        for _ in 0..10 {
            for e in w.epoch_events() {
                match e {
                    Event::Arrive { key, .. } => assert!(live.insert(key)),
                    Event::Depart { key } => assert!(live.remove(&key)),
                    Event::Rebalance { .. } => unreachable!("generator never emits rebalances"),
                }
            }
        }
    }

    #[test]
    fn online_run_is_deterministic_and_respects_effective_budgets() {
        let c = cfg();
        let a = run_farm_online(&c);
        let b = run_farm_online(&c);
        assert_eq!(a.sim.epochs, b.sim.epochs);
        assert_eq!(a.banked_per_epoch, b.banked_per_epoch);
        assert_eq!(a.final_loads, b.final_loads);
        assert_eq!(a.sim.epochs.len(), c.epochs);
        // Migrations never exceed the requested budget (the bank can only
        // tighten it).
        for e in &a.sim.epochs {
            assert!(e.migrations <= 4, "epoch {}: {}", e.epoch, e.migrations);
        }
        assert_eq!(a.stats.rebalances, c.epochs as u64);
        assert_eq!(
            a.stats.events,
            a.stats.arrivals + a.stats.departures + a.stats.rebalances
        );
    }

    #[test]
    fn bank_at_cap_with_forced_evacuation_same_epoch() {
        // The exhaustion boundary: a bank sitting exactly at its cap when
        // a crash forces evacuations in the same epoch as a rebalance.
        // Billing must drain below cap, the epoch's accrual must clamp at
        // the cap (forfeiting the excess, never overflowing), and the
        // rebalance's effective budget must equal the post-evacuation,
        // post-accrual balance.
        let bank = BankConfig {
            initial: 3,
            cap: 3,
            accrual: 2,
        };
        let mut farm = OnlineRebalancer::new(3, bank).expect("3 servers");
        for (k, (size, proc)) in [(9u64, 0), (7, 0), (5, 1), (4, 1), (3, 2)]
            .into_iter()
            .enumerate()
        {
            farm.arrive(k as u64, Job::unit(size), proc).unwrap();
        }
        assert_eq!(farm.bank().balance(), farm.bank().cap());

        // "Crash" server 2: evacuate its one job to the least-loaded
        // survivor, billing one move unit — exactly the faulty-run path.
        let stranded: Vec<JobKey> = farm
            .keys()
            .iter()
            .copied()
            .filter(|&k| farm.proc_of(k) == Some(2))
            .collect();
        assert_eq!(stranded.len(), 1);
        for key in &stranded {
            let to = (0..2).min_by_key(|&p| farm.loads()[p]).unwrap();
            farm.force_move(*key, to).unwrap();
            farm.bill(1);
        }
        assert_eq!(farm.bank().balance(), 2, "cap 3 minus one billed move");

        // Same epoch: rebalance. Accrual of 2 would reach 4 but clamps at
        // the cap; the effective budget is the clamped balance, not the
        // requested amount.
        let effective = farm.begin_rebalance(Budget::Moves(10));
        assert_eq!(farm.bank().balance(), farm.bank().cap());
        assert_eq!(effective, Budget::Moves(3));
        // Accrual of 2 from balance 2 would pass the cap of 3: only the
        // 1 credited unit counts; the forfeited remainder is gone.
        assert_eq!(farm.bank().total_accrued(), 1);

        // A full faulty run under heavy crash churn keeps the invariant
        // balance ≤ cap at every epoch, starting exactly at the cap.
        let mut c = cfg();
        c.bank = bank;
        c.epochs = 40;
        let fc = lrb_faults::FaultConfig {
            crash_rate: 0.35,
            recovery_rate: 0.5,
            ..lrb_faults::FaultConfig::none(9)
        };
        let plan = FaultPlan::generate(&fc, c.num_procs, c.epochs);
        let r = run_farm_online_faulty(&c, &plan);
        assert_eq!(r.banked_per_epoch.len(), c.epochs);
        for (e, &b) in r.banked_per_epoch.iter().enumerate() {
            assert!(b <= bank.cap, "epoch {e}: banked {b} above cap");
        }
    }

    #[test]
    fn warm_ladder_makes_most_rebalances_incremental() {
        let mut c = cfg();
        c.budget = Budget::Moves(4);
        let r = run_farm_online(&c);
        // Churn between epochs changes the multiset, so the epoch solve
        // itself is primed by the incremental multiset: every non-empty
        // rebalance should hit the primed ladder.
        assert_eq!(
            r.stats.incremental_updates, c.epochs as u64,
            "{:?}",
            r.stats
        );
    }

    #[test]
    fn online_counters_are_emitted() {
        let rec = lrb_obs::AtomicRecorder::new();
        let c = cfg();
        let r = run_farm_online_recorded(&c, &rec);
        let snap = rec.snapshot();
        assert_eq!(snap.counter(names::ONLINE_EVENTS), Some(r.stats.events));
        assert_eq!(
            snap.counter(names::ONLINE_REBALANCES),
            Some(c.epochs as u64)
        );
        assert_eq!(
            snap.histogram(names::ONLINE_BANKED).unwrap().count,
            c.epochs as u64
        );
        assert!(snap.histogram(names::ONLINE_EVENT_NANOS).unwrap().count > 0);
    }

    #[test]
    fn fault_free_plan_is_bit_identical_to_clean_run() {
        let c = cfg();
        let clean = run_farm_online(&c);
        let faulty = run_farm_online_faulty(&c, &FaultPlan::none(c.num_procs));
        assert_same_trace(&clean, &faulty);
    }

    #[test]
    fn crashes_evacuate_and_degrade_gracefully() {
        let c = cfg();
        let plan = FaultPlan::generate(
            &lrb_faults::FaultConfig::crashes(0.25, 0.5, 7),
            c.num_procs,
            c.epochs,
        );
        assert!(!plan.is_fault_free());
        let r = run_farm_online_faulty(&c, &plan);
        assert_eq!(r.sim.epochs.len(), c.epochs);
        assert_eq!(r.sim.provenance.len(), c.epochs);
        assert!(
            r.sim.degradation.forced_migrations > 0,
            "{:?}",
            r.sim.degradation
        );
        assert!(r.sim.degradation.epochs_degraded > 0);
        assert!(r.sim.degradation.mean_oracle_regret.is_finite());
        let deterministic = run_farm_online_faulty(&c, &plan);
        assert_same_trace(&r, &deterministic);
    }

    #[test]
    fn exhausted_epochs_skip_the_solve() {
        let c = cfg();
        let plan = FaultPlan::generate(
            &lrb_faults::FaultConfig {
                exhaust_rate: 1.0,
                ..lrb_faults::FaultConfig::none(5)
            },
            c.num_procs,
            c.epochs,
        );
        let r = run_farm_online_faulty(&c, &plan);
        assert_eq!(r.sim.degradation.budget_exhausted_epochs, c.epochs as u64);
        assert_eq!(r.stats.rebalances, 0);
    }

    #[test]
    fn fleet_traces_match_solo_online_runs() {
        let mut farms = Vec::new();
        for (m, seed) in [(4usize, 1u64), (6, 2), (3, 3)] {
            let mut fc = OnlineWorkloadConfig::default_online(m);
            fc.epochs = 20;
            fc.seed = seed;
            farms.push(fc);
        }
        // A shorter cost-budget farm covers the cost path and early finish.
        let mut fc = OnlineWorkloadConfig::default_online(4);
        fc.epochs = 12;
        fc.budget = Budget::Cost(5);
        fc.seed = 9;
        farms.push(fc);

        let fleet = run_online_fleet(&OnlineFleetConfig {
            farms: farms.clone(),
            threads: 2,
        });
        assert_eq!(fleet.len(), farms.len());
        for (fc, fleet_report) in farms.iter().zip(&fleet) {
            let solo = run_farm_online(fc);
            assert_eq!(fleet_report.sim.policy, solo.sim.policy);
            assert_eq!(fleet_report.sim.epochs, solo.sim.epochs);
            assert_eq!(fleet_report.sim.decisions, solo.sim.decisions);
            assert_eq!(fleet_report.banked_per_epoch, solo.banked_per_epoch);
            assert_eq!(fleet_report.arrivals_per_epoch, solo.arrivals_per_epoch);
            assert_eq!(fleet_report.departures_per_epoch, solo.departures_per_epoch);
            assert_eq!(fleet_report.final_loads, solo.final_loads);
        }
    }

    #[test]
    fn online_fleet_is_thread_count_invariant() {
        let farms: Vec<OnlineWorkloadConfig> = (0..3)
            .map(|i| {
                let mut fc = OnlineWorkloadConfig::default_online(4 + i);
                fc.epochs = 15;
                fc.seed = i as u64;
                fc
            })
            .collect();
        let seq = run_online_fleet(&OnlineFleetConfig {
            farms: farms.clone(),
            threads: 1,
        });
        for threads in [2, 4, 8] {
            let par = run_online_fleet(&OnlineFleetConfig {
                farms: farms.clone(),
                threads,
            });
            for (a, b) in seq.iter().zip(&par) {
                assert_same_trace(a, b);
            }
        }
    }

    #[test]
    fn empty_online_fleet() {
        assert!(run_online_fleet(&OnlineFleetConfig {
            farms: Vec::new(),
            threads: 4,
        })
        .is_empty());
    }
}
