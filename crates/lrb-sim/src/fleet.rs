//! Lockstep multi-farm simulation over the batch engine.
//!
//! A fleet steps many independent farms through their epochs together: at
//! each tick every farm's rebalancing snapshot goes into one
//! [`lrb_engine`] batch, solved across worker threads with per-worker
//! scratch reuse. Because the engine is bit-identical to the sequential
//! solvers for any thread count, each farm's report matches what
//! [`crate::farm::run`] with an [`crate::policy::MPartitionPolicy`] would
//! have produced on its own — the fleet changes wall-clock, never traces.
//!
//! One bookkeeping difference: per-epoch wall times
//! ([`SimReport::epoch_wall_nanos`]) cover only each farm's solve (the
//! engine's per-item latency), not workload stepping, since epochs of
//! different farms interleave inside a batch.

use lrb_engine::{solve_batch_recorded, BatchItem, BatchSolver, EngineConfig};
use lrb_obs::{names, NoopRecorder, Recorder};

use crate::farm::{instance_for, FarmConfig};
use crate::metrics::{DecisionCounters, DegradationMetrics, EpochMetrics, SimReport};
use crate::workload::Workload;

/// A set of farms simulated in lockstep through the batch engine.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The farms; they may differ in size, budget, workload, and epoch
    /// count (shorter farms simply finish early).
    pub farms: Vec<FarmConfig>,
    /// Engine worker threads; `0` = available parallelism.
    pub threads: usize,
}

/// Run every farm under the M-PARTITION policy via the batch engine.
pub fn run_fleet(cfg: &FleetConfig) -> Vec<SimReport> {
    run_fleet_recorded(cfg, &NoopRecorder)
}

/// [`run_fleet`] with instrumentation: the engine's `engine.*` metrics plus
/// the same `sim.*` counters the sequential farm loop emits.
pub fn run_fleet_recorded<R: Recorder + Sync>(cfg: &FleetConfig, rec: &R) -> Vec<SimReport> {
    struct FarmState {
        workload: Workload,
        placement: Vec<usize>,
        epochs: Vec<EpochMetrics>,
        epoch_wall_nanos: Vec<u64>,
        decisions: DecisionCounters,
    }

    let mut farms: Vec<FarmState> = cfg
        .farms
        .iter()
        .map(|fc| {
            let workload = Workload::new(fc.workload, fc.seed);
            let placement = lrb_core::lpt::schedule(workload.loads(), fc.num_servers);
            FarmState {
                workload,
                placement,
                epochs: Vec::with_capacity(fc.epochs),
                epoch_wall_nanos: Vec::with_capacity(fc.epochs),
                decisions: DecisionCounters::default(),
            }
        })
        .collect();

    let max_epochs = cfg.farms.iter().map(|f| f.epochs).max().unwrap_or(0);
    let engine_cfg = EngineConfig::with_threads(cfg.threads);

    for epoch in 0..max_epochs {
        // The clock feeds lockstep-epoch telemetry only.
        let lockstep_started = R::ENABLED.then(std::time::Instant::now);
        // Snapshot every still-running farm into one batch.
        let mut active: Vec<usize> = Vec::new();
        let mut items: Vec<BatchItem> = Vec::new();
        for (i, fc) in cfg.farms.iter().enumerate() {
            if epoch >= fc.epochs {
                continue;
            }
            let state = &mut farms[i];
            state.workload.step();
            items.push(BatchItem {
                instance: instance_for(state.workload.loads(), &state.placement, fc),
                budget: fc.budget,
            });
            active.push(i);
        }
        if items.is_empty() {
            break;
        }

        let batch = solve_batch_recorded(&items, BatchSolver::MPartition, &engine_cfg, rec);

        for (slot, &i) in active.iter().enumerate() {
            let fc = &cfg.farms[i];
            let state = &mut farms[i];
            let inst = &items[slot].instance;
            let new_assignment = batch.outcomes[slot].assignment().to_vec();

            let makespan = inst
                .makespan_of(&new_assignment)
                .expect("engine returned malformed assignment");
            assert!(
                fc.budget.allows(inst, &new_assignment),
                "engine exceeded the budget on farm {i}"
            );

            let migrations = inst.move_count(&new_assignment);
            let migration_cost = inst.move_cost(&new_assignment);
            // Epoch indices are per *farm*, contiguous from 0 — every farm
            // starts at the global tick 0 and only ever drops out at its
            // own end, so its local count and the global loop index agree.
            // Recording the local count keeps traces comparable with solo
            // runs even if the scheduling of farms ever changes.
            let farm_epoch = state.epochs.len();
            debug_assert_eq!(farm_epoch, epoch);
            state.epochs.push(EpochMetrics {
                epoch: farm_epoch,
                makespan,
                avg_load: inst.avg_load_ceil(),
                migrations,
                migration_cost,
            });
            state.placement = new_assignment;
            state.decisions.record(migrations);

            let nanos = batch.solve_nanos[slot].max(1);
            state.epoch_wall_nanos.push(nanos);
            rec.incr(names::SIM_EPOCHS, 1);
            rec.incr(
                if migrations > 0 {
                    names::SIM_REBALANCED
                } else {
                    names::SIM_UNCHANGED
                },
                1,
            );
            rec.observe(names::SIM_EPOCH_NANOS, nanos);
        }
        if let Some(started) = lockstep_started {
            rec.record_duration(
                names::SIM_FLEET_EPOCH,
                (started.elapsed().as_nanos() as u64).max(1),
            );
        }
    }

    for state in &farms {
        for (e, m) in state.epochs.iter().enumerate() {
            assert_eq!(m.epoch, e, "per-farm epoch indices must be contiguous");
        }
    }
    farms
        .into_iter()
        .map(|state| SimReport {
            policy: "m-partition".to_string(),
            epochs: state.epochs,
            epoch_wall_nanos: state.epoch_wall_nanos,
            decisions: state.decisions,
            degradation: DegradationMetrics::default(),
            provenance: Vec::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::run;
    use crate::policy::MPartitionPolicy;
    use lrb_core::model::Budget;

    fn fleet() -> FleetConfig {
        let mut farms = Vec::new();
        for (sites, servers, seed) in [(40, 4, 1u64), (60, 6, 2), (30, 3, 3)] {
            let mut fc = FarmConfig::default_farm(sites, servers);
            fc.epochs = 25;
            fc.seed = seed;
            farms.push(fc);
        }
        // One cost-budget farm to cover the cost-partition path.
        let mut fc = FarmConfig::default_farm(24, 4);
        fc.epochs = 15;
        fc.budget = Budget::Cost(5);
        fc.seed = 9;
        farms.push(fc);
        FleetConfig { farms, threads: 2 }
    }

    #[test]
    fn fleet_traces_match_sequential_farm_runs() {
        let cfg = fleet();
        let reports = run_fleet(&cfg);
        assert_eq!(reports.len(), cfg.farms.len());
        for (fc, fleet_report) in cfg.farms.iter().zip(&reports) {
            let solo = run(fc, &mut MPartitionPolicy);
            assert_eq!(fleet_report.policy, solo.policy);
            assert_eq!(fleet_report.epochs, solo.epochs);
            assert_eq!(fleet_report.decisions, solo.decisions);
        }
    }

    #[test]
    fn per_farm_epoch_indices_are_contiguous_despite_mixed_lengths() {
        let reports = run_fleet(&fleet());
        for (fc, report) in fleet().farms.iter().zip(&reports) {
            assert_eq!(report.epochs.len(), fc.epochs);
            for (e, m) in report.epochs.iter().enumerate() {
                assert_eq!(m.epoch, e);
            }
        }
    }

    #[test]
    fn fleet_is_thread_count_invariant() {
        let mut cfg = fleet();
        cfg.threads = 1;
        let seq = run_fleet(&cfg);
        for threads in [2, 4, 8] {
            cfg.threads = threads;
            let par = run_fleet(&cfg);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.epochs, b.epochs, "threads={threads}");
                assert_eq!(a.decisions, b.decisions, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_fleet() {
        let reports = run_fleet(&FleetConfig {
            farms: Vec::new(),
            threads: 4,
        });
        assert!(reports.is_empty());
    }
}
