//! Time-varying website load model for the web-farm simulation.
//!
//! Each website has a base load drawn from a configurable distribution.
//! Per epoch, loads drift multiplicatively (mean-reverting toward the
//! base), and occasionally a site catches a *flash crowd*: its load jumps
//! by a multiplier and decays back over a geometric-length episode. This is
//! the drift that makes an initially balanced placement rot — the paper's
//! motivating scenario (§1).

use lrb_instances::generators::SizeDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload model parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of websites.
    pub num_sites: usize,
    /// Distribution of base (steady-state) loads.
    pub base: SizeDistribution,
    /// Per-epoch multiplicative drift half-width: each epoch a site's load
    /// is multiplied by a uniform factor in `[1 − drift, 1 + drift]`.
    pub drift: f64,
    /// Mean-reversion strength toward the base load (0 = pure random walk,
    /// whose imbalance grows over time — the paper's "load rots" scenario;
    /// 1 = loads snap back to base every epoch).
    pub reversion: f64,
    /// Per-epoch probability that a site catches a flash crowd.
    pub flash_prob: f64,
    /// Flash crowd load multiplier.
    pub flash_mult: f64,
    /// Per-epoch probability a flash crowd ends (geometric duration).
    pub flash_end_prob: f64,
    /// Optional diurnal cycle: sites are split into phase groups whose
    /// loads swing sinusoidally (peak-to-trough ratio `1 + amplitude`)
    /// with this period in epochs. `None` disables the cycle. Models the
    /// day/night pattern of geographically mixed websites — a *correlated*
    /// drift that pure random walks miss.
    pub diurnal: Option<Diurnal>,
}

/// Parameters of the diurnal load cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Cycle length in epochs.
    pub period: usize,
    /// Peak swing relative to the base (0.5 = ±50%).
    pub amplitude: f64,
    /// Number of phase groups sites are spread across (e.g. 2 hemispheres,
    /// 4 continents).
    pub groups: usize,
}

impl WorkloadConfig {
    /// A reasonable default web-farm workload.
    pub fn default_web(num_sites: usize) -> Self {
        WorkloadConfig {
            num_sites,
            base: SizeDistribution::Pareto {
                scale: 10,
                alpha: 1.8,
            },
            drift: 0.12,
            reversion: 0.0,
            flash_prob: 0.005,
            flash_mult: 8.0,
            flash_end_prob: 0.25,
            diurnal: None,
        }
    }

    /// A web farm with a day/night cycle layered on the default drift.
    pub fn diurnal_web(num_sites: usize, period: usize) -> Self {
        WorkloadConfig {
            diurnal: Some(Diurnal {
                period,
                amplitude: 0.6,
                groups: 4,
            }),
            reversion: 0.3, // the cycle, not the walk, should dominate
            ..Self::default_web(num_sites)
        }
    }
}

/// Evolving workload state.
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    rng: StdRng,
    base: Vec<u64>,
    /// The drifting random-walk component (pre-diurnal).
    walk: Vec<u64>,
    /// Displayed loads: `walk` with the diurnal factor applied.
    loads: Vec<u64>,
    flashing: Vec<bool>,
    epoch: usize,
}

impl Workload {
    /// Initialize from a seed; initial loads equal base loads.
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<u64> = (0..cfg.num_sites)
            .map(|_| cfg.base.sample(&mut rng).max(1))
            .collect();
        let loads = base.clone();
        let flashing = vec![false; cfg.num_sites];
        let walk = loads.clone();
        let mut w = Workload {
            cfg,
            rng,
            base,
            walk,
            loads,
            flashing,
            epoch: 0,
        };
        w.refresh_displayed();
        w
    }

    /// Diurnal multiplier for site `i` at the current epoch (1.0 when the
    /// cycle is disabled).
    fn diurnal_factor(&self, i: usize) -> f64 {
        let Some(d) = self.cfg.diurnal else {
            return 1.0;
        };
        let phase = (i % d.groups.max(1)) as f64 / d.groups.max(1) as f64;
        let angle = std::f64::consts::TAU * (self.epoch as f64 / d.period.max(1) as f64 + phase);
        1.0 + d.amplitude * angle.sin()
    }

    /// Recompute displayed loads from the walk and the diurnal factor.
    fn refresh_displayed(&mut self) {
        for i in 0..self.walk.len() {
            let f = self.diurnal_factor(i);
            self.loads[i] = ((self.walk[i] as f64) * f).round().clamp(1.0, 1e12) as u64;
        }
    }

    /// Current per-site loads.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Number of sites currently in a flash crowd.
    pub fn flash_count(&self) -> usize {
        self.flashing.iter().filter(|&&f| f).count()
    }

    /// Advance one epoch.
    pub fn step(&mut self) {
        self.epoch += 1;
        for i in 0..self.walk.len() {
            // Flash-crowd state machine.
            if self.flashing[i] {
                if self.rng.gen_bool(self.cfg.flash_end_prob) {
                    self.flashing[i] = false;
                    self.walk[i] = self.base[i];
                }
            } else if self.rng.gen_bool(self.cfg.flash_prob) {
                self.flashing[i] = true;
                self.walk[i] = ((self.walk[i] as f64) * self.cfg.flash_mult).round() as u64;
            }
            if self.flashing[i] {
                continue; // flash loads don't drift
            }
            // Multiplicative drift with configurable mean reversion, capped
            // so a long walk cannot overflow.
            let f = self
                .rng
                .gen_range(1.0 - self.cfg.drift..=1.0 + self.cfg.drift);
            let drifted = (self.walk[i] as f64) * f;
            let reverted = drifted + self.cfg.reversion * (self.base[i] as f64 - drifted);
            self.walk[i] = reverted.round().clamp(1.0, 1e12) as u64;
        }
        self.refresh_displayed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> WorkloadConfig {
        WorkloadConfig::default_web(n)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Workload::new(cfg(20), 9);
        let mut b = Workload::new(cfg(20), 9);
        for _ in 0..50 {
            a.step();
            b.step();
        }
        assert_eq!(a.loads(), b.loads());
    }

    #[test]
    fn loads_stay_positive() {
        let mut w = Workload::new(cfg(30), 4);
        for _ in 0..200 {
            w.step();
            assert!(w.loads().iter().all(|&l| l >= 1));
        }
    }

    #[test]
    fn flash_crowds_happen_and_end() {
        let mut c = cfg(2);
        c.flash_prob = 0.2;
        c.flash_end_prob = 0.6;
        let mut w = Workload::new(c, 7);
        let mut saw_flash = false;
        let mut saw_calm_after_flash = false;
        for _ in 0..100 {
            w.step();
            if w.flash_count() > 0 {
                saw_flash = true;
            } else if saw_flash {
                saw_calm_after_flash = true;
            }
        }
        assert!(saw_flash);
        assert!(saw_calm_after_flash);
    }

    #[test]
    fn flash_multiplies_load() {
        let mut c = cfg(1);
        c.flash_prob = 1.0; // flash immediately
        c.flash_end_prob = 0.0;
        c.drift = 0.0;
        let mut w = Workload::new(c, 1);
        let before = w.loads()[0];
        w.step();
        assert_eq!(w.loads()[0], ((before as f64) * 8.0).round() as u64);
    }

    #[test]
    fn diurnal_cycle_swings_and_returns() {
        let mut c = WorkloadConfig::diurnal_web(8, 20);
        c.drift = 0.0;
        c.flash_prob = 0.0;
        c.reversion = 0.0;
        let mut w = Workload::new(c, 11);
        let start = w.loads().to_vec();
        // Mid-cycle the group loads differ from the start...
        for _ in 0..10 {
            w.step();
        }
        assert_ne!(w.loads(), &start[..]);
        // ...and after a full period they return (no drift, pure cycle).
        for _ in 0..10 {
            w.step();
        }
        assert_eq!(w.loads(), &start[..]);
    }

    #[test]
    fn diurnal_groups_are_out_of_phase() {
        let mut c = WorkloadConfig::diurnal_web(4, 16);
        c.drift = 0.0;
        c.flash_prob = 0.0;
        c.reversion = 0.0;
        c.base = SizeDistribution::Constant(100);
        let mut w = Workload::new(c, 3);
        w.step();
        // Same base, different phases: the four sites differ.
        let loads = w.loads();
        assert!(loads.iter().any(|&l| l != loads[0]), "{loads:?}");
    }

    #[test]
    fn drift_changes_loads_over_time() {
        let mut c = cfg(10);
        c.flash_prob = 0.0;
        let mut w = Workload::new(c, 3);
        let before = w.loads().to_vec();
        for _ in 0..20 {
            w.step();
        }
        assert_ne!(w.loads(), &before[..]);
    }
}
