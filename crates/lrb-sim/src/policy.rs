//! Rebalancing policies pluggable into the simulators.
//!
//! A policy sees the current placement as a load rebalancing [`Instance`]
//! (current loads as job sizes, current placement as the initial
//! assignment) plus a per-epoch relocation budget, and returns the new
//! assignment. The simulator enforces that the returned assignment is
//! well-formed and within budget.

use lrb_core::lpt;
use lrb_core::model::{Assignment, Budget, Instance};
use lrb_core::{cost_partition, greedy, mpartition};

/// A per-epoch rebalancing policy.
pub trait Policy {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Produce a new assignment within the budget.
    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment;
}

/// Never move anything — the drift baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRebalance;

impl Policy for NoRebalance {
    fn name(&self) -> &'static str {
        "no-rebalance"
    }

    fn rebalance(&mut self, inst: &Instance, _budget: Budget) -> Assignment {
        inst.initial().clone()
    }
}

/// The paper's `GREEDY` (§2) each epoch.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyPolicy;

impl Policy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment {
        let k = budget_as_moves(inst, budget);
        greedy::rebalance(inst, k)
            .map(|o| o.into_assignment())
            .unwrap_or_else(|_| inst.initial().clone())
    }
}

/// The paper's `M-PARTITION` (§3) each epoch — the headline policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct MPartitionPolicy;

impl Policy for MPartitionPolicy {
    fn name(&self) -> &'static str {
        "m-partition"
    }

    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment {
        match budget {
            Budget::Moves(k) => mpartition::rebalance(inst, k)
                .map(|r| r.outcome.into_assignment())
                .unwrap_or_else(|_| inst.initial().clone()),
            Budget::Cost(b) => cost_partition::rebalance(inst, b)
                .map(|r| r.outcome.into_assignment())
                .unwrap_or_else(|_| inst.initial().clone()),
        }
    }
}

/// Reschedule everything from scratch with LPT, ignoring the budget (the
/// simulator treats this policy as having an unlimited budget). The upper
/// baseline: what unconstrained migration buys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FullRebalance;

impl Policy for FullRebalance {
    fn name(&self) -> &'static str {
        "full-rebalance"
    }

    fn rebalance(&mut self, inst: &Instance, _budget: Budget) -> Assignment {
        lpt::full_rebalance(inst)
            .map(|o| o.into_assignment())
            .unwrap_or_else(|_| inst.initial().clone())
    }
}

/// Wrap another policy: only invoke it when the imbalance (makespan over
/// average load) exceeds `trigger_pct`/100; otherwise do nothing. Models
/// the operational pattern of rebalancing only past a threshold.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdTriggered<P> {
    /// The wrapped policy.
    pub inner: P,
    /// Trigger when `100·makespan > trigger_pct · avg`.
    pub trigger_pct: u64,
}

impl<P: Policy> Policy for ThresholdTriggered<P> {
    fn name(&self) -> &'static str {
        "threshold-triggered"
    }

    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment {
        let avg = inst.avg_load_ceil().max(1);
        if 100 * inst.initial_makespan() > self.trigger_pct * avg {
            self.inner.rebalance(inst, budget)
        } else {
            inst.initial().clone()
        }
    }
}

/// Interpret a budget as a move count (cost budgets fall back to the number
/// of cheapest jobs that fit, matching `lrb_core::bounds`).
pub fn budget_as_moves(inst: &Instance, budget: Budget) -> usize {
    match budget {
        Budget::Moves(k) => k,
        Budget::Cost(_) => lrb_core::bounds::max_moves_within(inst, budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_sizes(&[9, 8, 2, 1], vec![0, 0, 1, 1], 2).unwrap()
    }

    #[test]
    fn no_rebalance_is_identity() {
        let i = inst();
        let a = NoRebalance.rebalance(&i, Budget::Moves(4));
        assert_eq!(&a, i.initial());
    }

    #[test]
    fn policies_respect_move_budget() {
        let i = inst();
        for k in 0..=4 {
            for (name, a) in [
                ("greedy", GreedyPolicy.rebalance(&i, Budget::Moves(k))),
                (
                    "m-partition",
                    MPartitionPolicy.rebalance(&i, Budget::Moves(k)),
                ),
            ] {
                assert!(i.move_count(&a) <= k, "{name} k={k}");
                assert!(i.makespan_of(&a).is_ok(), "{name} k={k}");
            }
        }
    }

    #[test]
    fn mpartition_policy_honors_cost_budgets() {
        let i = inst();
        for b in 0..=4 {
            let a = MPartitionPolicy.rebalance(&i, Budget::Cost(b));
            assert!(i.move_cost(&a) <= b, "b={b}");
        }
    }

    #[test]
    fn full_rebalance_balances() {
        let i = inst();
        let a = FullRebalance.rebalance(&i, Budget::Moves(0));
        // Total 20 over 2 -> LPT reaches 10 here ({9,1},{8,2}).
        assert_eq!(i.makespan_of(&a).unwrap(), 10);
    }

    #[test]
    fn threshold_trigger_gates_the_inner_policy() {
        let i = inst(); // makespan 17, avg 10: imbalance 170%.
        let mut calm = ThresholdTriggered {
            inner: GreedyPolicy,
            trigger_pct: 200,
        };
        assert_eq!(&calm.rebalance(&i, Budget::Moves(4)), i.initial());
        let mut eager = ThresholdTriggered {
            inner: GreedyPolicy,
            trigger_pct: 110,
        };
        assert_ne!(&eager.rebalance(&i, Budget::Moves(4)), i.initial());
    }
}
