//! Rebalancing policies pluggable into the simulators.
//!
//! A policy sees the current placement as a load rebalancing [`Instance`]
//! (current loads as job sizes, current placement as the initial
//! assignment) plus a per-epoch relocation budget, and returns the new
//! assignment. The simulator enforces that the returned assignment is
//! well-formed and within budget.

use lrb_core::deadline::{FallbackChain, WorkBudget};
use lrb_core::lpt;
use lrb_core::model::{Assignment, Budget, Instance};
use lrb_core::{cost_partition, greedy, mpartition};

/// A per-epoch rebalancing policy.
pub trait Policy {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Produce a new assignment within the budget.
    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment;

    /// Fault-aware simulators announce the epoch's outage mask (`true` =
    /// down) before calling [`Policy::rebalance`]. The mask describes the
    /// *unprojected* farm, so its length can exceed the number of
    /// processors in the instance the policy is then handed (the simulator
    /// projects crashed processors away). Default: ignore.
    fn note_outages(&mut self, _down: &[bool]) {}

    /// Fault-aware simulators announce the epoch's solver work allowance:
    /// `Some(ticks)` when the fault plan declares the solver budget
    /// exhausted, `None` for an unconstrained epoch. Default: ignore.
    fn note_work_budget(&mut self, _ticks: Option<u64>) {}

    /// Who answered the last [`Policy::rebalance`] call: `"policy"` for the
    /// normal path, or a fallback-tier name (e.g. `"greedy"`, `"no-move"`)
    /// when the policy degraded. Default: always the normal path.
    fn provenance(&self) -> &'static str {
        "policy"
    }
}

/// Never move anything — the drift baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoRebalance;

impl Policy for NoRebalance {
    fn name(&self) -> &'static str {
        "no-rebalance"
    }

    fn rebalance(&mut self, inst: &Instance, _budget: Budget) -> Assignment {
        inst.initial().clone()
    }
}

/// The paper's `GREEDY` (§2) each epoch.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyPolicy;

impl Policy for GreedyPolicy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment {
        let k = budget_as_moves(inst, budget);
        greedy::rebalance(inst, k)
            .map(|o| o.into_assignment())
            .unwrap_or_else(|_| inst.initial().clone())
    }
}

/// The paper's `M-PARTITION` (§3) each epoch — the headline policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct MPartitionPolicy;

impl Policy for MPartitionPolicy {
    fn name(&self) -> &'static str {
        "m-partition"
    }

    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment {
        match budget {
            Budget::Moves(k) => mpartition::rebalance(inst, k)
                .map(|r| r.outcome.into_assignment())
                .unwrap_or_else(|_| inst.initial().clone()),
            Budget::Cost(b) => cost_partition::rebalance(inst, b)
                .map(|r| r.outcome.into_assignment())
                .unwrap_or_else(|_| inst.initial().clone()),
        }
    }
}

/// Reschedule everything from scratch with LPT, ignoring the budget (the
/// simulator treats this policy as having an unlimited budget). The upper
/// baseline: what unconstrained migration buys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FullRebalance;

impl Policy for FullRebalance {
    fn name(&self) -> &'static str {
        "full-rebalance"
    }

    fn rebalance(&mut self, inst: &Instance, _budget: Budget) -> Assignment {
        lpt::full_rebalance(inst)
            .map(|o| o.into_assignment())
            .unwrap_or_else(|_| inst.initial().clone())
    }
}

/// Wrap another policy: only invoke it when the imbalance (makespan over
/// average load) exceeds `trigger_pct`/100; otherwise do nothing. Models
/// the operational pattern of rebalancing only past a threshold.
///
/// Under fault injection the trigger is outage-aware: when the processor
/// responsible for the makespan (the most loaded one) is marked down by
/// [`Policy::note_outages`], its reported load is untrustworthy and the
/// wrapper does not fire. Suppression only applies when the mask length
/// matches the instance (i.e. the instance was not already projected onto
/// the surviving processors).
#[derive(Debug, Clone, Default)]
pub struct ThresholdTriggered<P> {
    /// The wrapped policy.
    pub inner: P,
    /// Trigger when `100·makespan > trigger_pct · avg`.
    pub trigger_pct: u64,
    down: Vec<bool>,
}

impl<P> ThresholdTriggered<P> {
    /// Wrap `inner`, firing past `trigger_pct` percent imbalance.
    pub fn new(inner: P, trigger_pct: u64) -> Self {
        ThresholdTriggered {
            inner,
            trigger_pct,
            down: Vec::new(),
        }
    }
}

impl<P: Policy> Policy for ThresholdTriggered<P> {
    fn name(&self) -> &'static str {
        "threshold-triggered"
    }

    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment {
        let avg = inst.avg_load_ceil().max(1);
        let fires = 100 * inst.initial_makespan() > self.trigger_pct * avg;
        if fires && self.down.len() == inst.num_procs() {
            // The trigger is the most loaded processor; if it is down, the
            // spike is an artifact of an outage, not a reason to burn the
            // migration budget on stale data.
            let trigger_proc = inst
                .initial_loads()
                .iter()
                .enumerate()
                .max_by_key(|&(_, &l)| l)
                .map(|(p, _)| p);
            if trigger_proc.is_some_and(|p| self.down[p]) {
                return inst.initial().clone();
            }
        }
        if fires {
            self.inner.rebalance(inst, budget)
        } else {
            inst.initial().clone()
        }
    }

    fn note_outages(&mut self, down: &[bool]) {
        self.down = down.to_vec();
        self.inner.note_outages(down);
    }

    fn note_work_budget(&mut self, ticks: Option<u64>) {
        self.inner.note_work_budget(ticks);
    }

    fn provenance(&self) -> &'static str {
        self.inner.provenance()
    }
}

/// A graceful-degradation policy: run a [`FallbackChain`] each epoch under
/// the work allowance announced via [`Policy::note_work_budget`], so a
/// "solver budget exhausted" epoch degrades tier by tier (PTAS →
/// M-PARTITION → GREEDY → no-move) instead of failing.
#[derive(Debug, Clone)]
pub struct FallbackPolicy {
    chain: FallbackChain,
    work_limit: Option<u64>,
    last_tier: &'static str,
}

impl FallbackPolicy {
    /// Drive the given chain.
    pub fn new(chain: FallbackChain) -> Self {
        FallbackPolicy {
            chain,
            work_limit: None,
            last_tier: "policy",
        }
    }

    /// The quality-first chain ([`FallbackChain::standard`]).
    pub fn standard() -> Self {
        Self::new(FallbackChain::standard())
    }

    /// The cheap polynomial chain ([`FallbackChain::practical`]).
    pub fn practical() -> Self {
        Self::new(FallbackChain::practical())
    }

    /// Name of the tier that answered the last epoch (`"policy"` when the
    /// first tier answered, before any epoch ran, or after a clean epoch).
    pub fn last_tier(&self) -> &'static str {
        self.last_tier
    }
}

impl Policy for FallbackPolicy {
    fn name(&self) -> &'static str {
        "fallback-chain"
    }

    fn rebalance(&mut self, inst: &Instance, budget: Budget) -> Assignment {
        let work = match self.work_limit {
            Some(ticks) => WorkBudget::new(ticks),
            None => WorkBudget::unlimited(),
        };
        let report = self.chain.solve(inst, budget, &work);
        self.last_tier = if report.degraded() {
            report.tier
        } else {
            "policy"
        };
        report.outcome.into_assignment()
    }

    fn note_work_budget(&mut self, ticks: Option<u64>) {
        self.work_limit = ticks;
    }

    fn provenance(&self) -> &'static str {
        self.last_tier
    }
}

/// Interpret a budget as a move count (cost budgets fall back to the number
/// of cheapest jobs that fit, matching `lrb_core::bounds`).
pub fn budget_as_moves(inst: &Instance, budget: Budget) -> usize {
    match budget {
        Budget::Moves(k) => k,
        Budget::Cost(_) => lrb_core::bounds::max_moves_within(inst, budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_sizes(&[9, 8, 2, 1], vec![0, 0, 1, 1], 2).unwrap()
    }

    #[test]
    fn no_rebalance_is_identity() {
        let i = inst();
        let a = NoRebalance.rebalance(&i, Budget::Moves(4));
        assert_eq!(&a, i.initial());
    }

    #[test]
    fn policies_respect_move_budget() {
        let i = inst();
        for k in 0..=4 {
            for (name, a) in [
                ("greedy", GreedyPolicy.rebalance(&i, Budget::Moves(k))),
                (
                    "m-partition",
                    MPartitionPolicy.rebalance(&i, Budget::Moves(k)),
                ),
            ] {
                assert!(i.move_count(&a) <= k, "{name} k={k}");
                assert!(i.makespan_of(&a).is_ok(), "{name} k={k}");
            }
        }
    }

    #[test]
    fn mpartition_policy_honors_cost_budgets() {
        let i = inst();
        for b in 0..=4 {
            let a = MPartitionPolicy.rebalance(&i, Budget::Cost(b));
            assert!(i.move_cost(&a) <= b, "b={b}");
        }
    }

    #[test]
    fn full_rebalance_balances() {
        let i = inst();
        let a = FullRebalance.rebalance(&i, Budget::Moves(0));
        // Total 20 over 2 -> LPT reaches 10 here ({9,1},{8,2}).
        assert_eq!(i.makespan_of(&a).unwrap(), 10);
    }

    #[test]
    fn threshold_trigger_gates_the_inner_policy() {
        let i = inst(); // makespan 17, avg 10: imbalance 170%.
        let mut calm = ThresholdTriggered::new(GreedyPolicy, 200);
        assert_eq!(&calm.rebalance(&i, Budget::Moves(4)), i.initial());
        let mut eager = ThresholdTriggered::new(GreedyPolicy, 110);
        assert_ne!(&eager.rebalance(&i, Budget::Moves(4)), i.initial());
    }

    #[test]
    fn threshold_trigger_is_suppressed_when_the_triggering_processor_is_down() {
        let i = inst(); // proc 0 carries the makespan (17 of 20).
        let mut p = ThresholdTriggered::new(GreedyPolicy, 110);

        // The most loaded processor is down: the spike is untrustworthy,
        // the wrapper must not fire.
        p.note_outages(&[true, false]);
        assert_eq!(&p.rebalance(&i, Budget::Moves(4)), i.initial());

        // A different processor is down: the trigger stands.
        p.note_outages(&[false, true]);
        assert_ne!(&p.rebalance(&i, Budget::Moves(4)), i.initial());

        // Outages cleared: normal behavior again.
        p.note_outages(&[false, false]);
        assert_ne!(&p.rebalance(&i, Budget::Moves(4)), i.initial());

        // A mask from the unprojected farm (wrong length for this
        // instance) never suppresses.
        p.note_outages(&[true, false, false]);
        assert_ne!(&p.rebalance(&i, Budget::Moves(4)), i.initial());
    }

    #[test]
    fn fallback_policy_degrades_with_the_announced_work_budget() {
        let i = inst();
        let mut p = FallbackPolicy::standard();

        // Unconstrained: first tier answers, provenance is the normal path.
        let a = p.rebalance(&i, Budget::Moves(2));
        assert!(i.move_count(&a) <= 2);
        assert_eq!(p.provenance(), "policy");

        // One tick of work: every real tier cancels, the chain bottoms out
        // at no-move — which is still a valid, budget-respecting answer.
        p.note_work_budget(Some(1));
        let a = p.rebalance(&i, Budget::Moves(2));
        assert_eq!(&a, i.initial());
        assert_eq!(p.provenance(), "no-move");
        assert_eq!(p.last_tier(), "no-move");

        // Lifting the allowance restores the normal path.
        p.note_work_budget(None);
        p.rebalance(&i, Budget::Moves(2));
        assert_eq!(p.provenance(), "policy");
    }
}
