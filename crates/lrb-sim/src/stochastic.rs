//! Stochastic job sizes and the effective-size rebalancing surrogate
//! (Gupta et al., arXiv:1904.07271).
//!
//! Real job sizes are not known at rebalancing time — only a per-job
//! distribution is. Gupta et al. show that scheduling by an **effective
//! size** `mean + θ·deviation` (a mean inflated by a safety margin
//! proportional to the job's variability) recovers most of the makespan
//! quality of clairvoyant scheduling. This module provides:
//!
//! * [`StochasticWorkload`] — a seeded generator of jobs with per-job
//!   `(mean, spread)` pairs; realized sizes are drawn uniformly from
//!   `[mean − spread, mean + spread]` per trial, so everything stays
//!   integer and bit-reproducible.
//! * [`rebalance_effective`] — the effective-size policy: rebalance the
//!   *surrogate* instance (sizes = effective sizes) with the speed-scaled
//!   M-PARTITION, then apply that assignment to whatever sizes realize.
//! * [`evaluate`] — a seeded trial loop comparing the realized scaled
//!   makespan of the effective-size assignment against the plain
//!   mean-based one (θ = 0), feeding the `stochastic` section of the
//!   `lrb hetero` report.

use lrb_core::error::Result;
use lrb_core::hetero::{self, Speeds};
use lrb_core::model::{Assignment, Instance, Size};
use lrb_instances::generators::SizeDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One stochastic job: the scheduler sees `(mean, spread)`; each trial a
/// size realizes uniformly in `[mean − spread, mean + spread]` (floored at
/// 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StochasticJob {
    /// Mean size (always ≥ 1).
    pub mean: Size,
    /// Half-width of the realization interval.
    pub spread: Size,
}

impl StochasticJob {
    /// The Gupta-style surrogate: `mean + θ·spread / 100` with `θ` in
    /// percent. `θ = 0` is plain mean-based scheduling; larger `θ` hedges
    /// harder against variability.
    pub fn effective_size(&self, theta_pct: u64) -> Size {
        self.mean
            .saturating_add(self.spread.saturating_mul(theta_pct) / 100)
            .max(1)
    }
}

/// Parameters of the stochastic workload generator.
#[derive(Debug, Clone, Copy)]
pub struct StochasticConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// Number of processors.
    pub procs: usize,
    /// Distribution the per-job *means* are drawn from.
    pub mean: SizeDistribution,
    /// Per-job spread as a percentage of its mean (`50` → spread = mean/2).
    pub spread_pct: u64,
    /// Generator seed: same seed, same workload, bit for bit.
    pub seed: u64,
}

impl StochasticConfig {
    /// A small default workload: uniform means in `[10, 100]`, ±50% spread.
    pub fn uniform(jobs: usize, procs: usize, seed: u64) -> Self {
        StochasticConfig {
            jobs,
            procs,
            mean: SizeDistribution::Uniform { lo: 10, hi: 100 },
            spread_pct: 50,
            seed,
        }
    }
}

/// A generated stochastic workload: jobs with `(mean, spread)` pairs plus
/// an initial placement.
#[derive(Debug, Clone)]
pub struct StochasticWorkload {
    jobs: Vec<StochasticJob>,
    initial: Assignment,
    procs: usize,
}

impl StochasticWorkload {
    /// Generate a workload from `cfg`, deterministically in `cfg.seed`.
    pub fn generate(cfg: &StochasticConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let jobs: Vec<StochasticJob> = (0..cfg.jobs)
            .map(|_| {
                let mean = cfg.mean.sample(&mut rng).max(1);
                let spread = mean.saturating_mul(cfg.spread_pct) / 100;
                StochasticJob { mean, spread }
            })
            .collect();
        let initial: Assignment = (0..cfg.jobs)
            .map(|_| rng.gen_range(0..cfg.procs.max(1)))
            .collect();
        StochasticWorkload {
            jobs,
            initial,
            procs: cfg.procs.max(1),
        }
    }

    /// The stochastic jobs, in id order.
    pub fn jobs(&self) -> &[StochasticJob] {
        &self.jobs
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The surrogate instance the scheduler actually solves: every size is
    /// the job's [`StochasticJob::effective_size`] at `θ`.
    pub fn effective_instance(&self, theta_pct: u64) -> Result<Instance> {
        let sizes: Vec<Size> = self
            .jobs
            .iter()
            .map(|j| j.effective_size(theta_pct))
            .collect();
        Instance::from_sizes(&sizes, self.initial.clone(), self.procs)
    }

    /// Draw one realization of every job's size (uniform in
    /// `[mean − spread, mean + spread]`, floored at 1), deterministically
    /// in `trial_seed`.
    pub fn realize(&self, trial_seed: u64) -> Vec<Size> {
        let mut rng = StdRng::seed_from_u64(trial_seed);
        self.jobs
            .iter()
            .map(|j| {
                let lo = j.mean.saturating_sub(j.spread).max(1);
                let hi = j.mean.saturating_add(j.spread).max(lo);
                rng.gen_range(lo..=hi)
            })
            .collect()
    }

    /// Speed-scaled makespan of `assignment` under realized `sizes`.
    pub fn realized_scaled_makespan(
        &self,
        speeds: &Speeds,
        assignment: &[usize],
        sizes: &[Size],
    ) -> Result<Size> {
        let inst = Instance::from_sizes(sizes, self.initial.clone(), self.procs)?;
        hetero::scaled_makespan(&inst, speeds, assignment)
    }
}

/// The effective-size policy: solve the θ-surrogate instance with the
/// speed-scaled M-PARTITION under `k` moves and return its assignment.
pub fn rebalance_effective(
    workload: &StochasticWorkload,
    speeds: &Speeds,
    k: usize,
    theta_pct: u64,
) -> Result<Assignment> {
    let surrogate = workload.effective_instance(theta_pct)?;
    let run = hetero::rebalance_mpartition(&surrogate, speeds, k)?;
    Ok(run.outcome.into_assignment())
}

/// Aggregate of an effective-size evaluation: realized scaled makespans
/// summed over trials for the θ-hedged policy versus the plain mean-based
/// one, both applying at most `k` moves to the same workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectiveSizeReport {
    /// Trials evaluated.
    pub trials: usize,
    /// θ (percent of spread) the hedged policy used.
    pub theta_pct: u64,
    /// Σ realized scaled makespan, θ-hedged assignment.
    pub total_effective: u64,
    /// Σ realized scaled makespan, mean-based (θ = 0) assignment.
    pub total_mean_based: u64,
    /// Trials where the hedged assignment was strictly better.
    pub improved_trials: usize,
    /// Trials where the hedged assignment was strictly worse.
    pub regressed_trials: usize,
    /// Moves the hedged assignment used.
    pub moves_effective: usize,
    /// Moves the mean-based assignment used.
    pub moves_mean_based: usize,
}

/// Run `trials` seeded realizations and score the effective-size policy
/// against mean-based scheduling. Both assignments are computed once (the
/// policies see only distributions, never realizations), then scored on
/// every realized size vector.
pub fn evaluate(
    workload: &StochasticWorkload,
    speeds: &Speeds,
    k: usize,
    theta_pct: u64,
    trials: usize,
    seed: u64,
) -> Result<EffectiveSizeReport> {
    let hedged = rebalance_effective(workload, speeds, k, theta_pct)?;
    let mean_based = rebalance_effective(workload, speeds, k, 0)?;
    let mean_inst = workload.effective_instance(0)?;
    let moves_effective = mean_inst.move_count(&hedged);
    let moves_mean_based = mean_inst.move_count(&mean_based);

    let mut report = EffectiveSizeReport {
        trials,
        theta_pct,
        total_effective: 0,
        total_mean_based: 0,
        improved_trials: 0,
        regressed_trials: 0,
        moves_effective,
        moves_mean_based,
    };
    for t in 0..trials {
        let sizes = workload.realize(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let e = workload.realized_scaled_makespan(speeds, &hedged, &sizes)?;
        let m = workload.realized_scaled_makespan(speeds, &mean_based, &sizes)?;
        report.total_effective = report.total_effective.saturating_add(e);
        report.total_mean_based = report.total_mean_based.saturating_add(m);
        if e < m {
            report.improved_trials += 1;
        } else if e > m {
            report.regressed_trials += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(seed: u64) -> StochasticWorkload {
        StochasticWorkload::generate(&StochasticConfig::uniform(24, 4, seed))
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = StochasticWorkload::generate(&StochasticConfig::uniform(16, 3, 7));
        let b = StochasticWorkload::generate(&StochasticConfig::uniform(16, 3, 7));
        assert_eq!(a.jobs(), b.jobs());
        assert_eq!(a.initial, b.initial);
        let c = StochasticWorkload::generate(&StochasticConfig::uniform(16, 3, 8));
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn effective_size_is_monotone_in_theta() {
        let j = StochasticJob {
            mean: 100,
            spread: 50,
        };
        assert_eq!(j.effective_size(0), 100);
        assert_eq!(j.effective_size(100), 150);
        assert!(j.effective_size(40) <= j.effective_size(80));
    }

    #[test]
    fn realizations_stay_in_interval_and_are_seeded() {
        let w = workload(3);
        let a = w.realize(11);
        let b = w.realize(11);
        assert_eq!(a, b);
        for (j, &s) in w.jobs().iter().zip(&a) {
            assert!(s >= j.mean.saturating_sub(j.spread).max(1));
            assert!(s <= j.mean + j.spread);
        }
    }

    #[test]
    fn policy_respects_move_budget() {
        let w = workload(5);
        let speeds = Speeds::new(vec![1, 2, 3, 1]).unwrap();
        for k in [0, 2, 5] {
            let a = rebalance_effective(&w, &speeds, k, 60).unwrap();
            let moved = w.initial.iter().zip(&a).filter(|(i, f)| i != f).count();
            assert!(moved <= k, "k={k} moved={moved}");
        }
    }

    #[test]
    fn evaluate_scores_both_policies_on_the_same_realizations() {
        let w = workload(9);
        let speeds = Speeds::new(vec![1, 1, 2, 4]).unwrap();
        let r = evaluate(&w, &speeds, 6, 80, 16, 42).unwrap();
        assert_eq!(r.trials, 16);
        assert!(r.total_effective > 0 && r.total_mean_based > 0);
        assert!(r.improved_trials + r.regressed_trials <= r.trials);
        // Reproducible end to end.
        let r2 = evaluate(&w, &speeds, 6, 80, 16, 42).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn theta_zero_equals_mean_based_by_construction() {
        let w = workload(13);
        let speeds = Speeds::new(vec![2, 1, 1, 3]).unwrap();
        let r = evaluate(&w, &speeds, 4, 0, 8, 1).unwrap();
        assert_eq!(r.total_effective, r.total_mean_based);
        assert_eq!(r.improved_trials, 0);
        assert_eq!(r.regressed_trials, 0);
    }
}
