//! # lrb-sim — simulators for the paper's motivating applications
//!
//! The paper's introduction motivates bounded-move rebalancing with two
//! systems scenarios; both are simulated here against the real algorithms:
//!
//! * [`farm`] — a **web-server farm** (the Linder–Shah website-migration
//!   setting): websites with drifting, flash-crowd-prone loads on servers,
//!   rebalanced each epoch under a migration budget;
//! * [`process`] — **process migration** on a multiprocessor: heavy-tailed
//!   process lifetimes (Harchol-Balter & Downey), memory-footprint
//!   migration costs.
//!
//! Shared pieces: [`workload`] (drift + flash crowds), [`policy`]
//! (pluggable rebalancers: none / GREEDY / M-PARTITION / full LPT /
//! threshold-triggered / fallback-chain), and [`metrics`] (imbalance
//! traces plus degradation aggregates).
//!
//! The farm simulator can also run under an `lrb-faults` fault plan
//! ([`run_farm_faulty`]): crashed servers are evacuated, policies see a
//! corrupted load view, and invalid answers degrade gracefully instead of
//! panicking.

pub mod adversary;
pub mod farm;
pub mod fleet;
pub mod metrics;
pub mod online;
pub mod policy;
pub mod process;
pub mod stochastic;
pub mod trace;
pub mod workload;

pub use adversary::{AdaptiveAdversary, Adversary, GreedyPunisher, RandomOrderAdversary};
pub use farm::{
    run as run_farm, run_faulty as run_farm_faulty,
    run_faulty_recorded as run_farm_faulty_recorded, run_faulty_traced as run_farm_faulty_traced,
    run_recorded as run_farm_recorded, FarmConfig, MigrationCost, EXHAUSTED_EPOCH_WORK_TICKS,
};
pub use fleet::{run_fleet, run_fleet_recorded, FleetConfig};
pub use metrics::{DecisionCounters, DegradationMetrics, EpochMetrics, SimReport};
pub use online::{
    run_farm_online, run_farm_online_faulty, run_farm_online_faulty_recorded,
    run_farm_online_recorded, run_online_fleet, run_online_fleet_recorded, OnlineFleetConfig,
    OnlineRunReport, OnlineWorkload, OnlineWorkloadConfig,
};
pub use policy::{
    FallbackPolicy, FullRebalance, GreedyPolicy, MPartitionPolicy, NoRebalance, Policy,
    ThresholdTriggered,
};
pub use process::{run as run_process, ProcessSimConfig};
pub use stochastic::{
    evaluate as evaluate_effective_size, rebalance_effective, EffectiveSizeReport,
    StochasticConfig, StochasticJob, StochasticWorkload,
};
pub use trace::{replay, TraceWorkload};
pub use workload::{Diurnal, Workload, WorkloadConfig};
