//! # lrb-sim — simulators for the paper's motivating applications
//!
//! The paper's introduction motivates bounded-move rebalancing with two
//! systems scenarios; both are simulated here against the real algorithms:
//!
//! * [`farm`] — a **web-server farm** (the Linder–Shah website-migration
//!   setting): websites with drifting, flash-crowd-prone loads on servers,
//!   rebalanced each epoch under a migration budget;
//! * [`process`] — **process migration** on a multiprocessor: heavy-tailed
//!   process lifetimes (Harchol-Balter & Downey), memory-footprint
//!   migration costs.
//!
//! Shared pieces: [`workload`] (drift + flash crowds), [`policy`]
//! (pluggable rebalancers: none / GREEDY / M-PARTITION / full LPT /
//! threshold-triggered), and [`metrics`] (imbalance traces).

pub mod farm;
pub mod metrics;
pub mod policy;
pub mod process;
pub mod trace;
pub mod workload;

pub use farm::{run as run_farm, run_recorded as run_farm_recorded, FarmConfig, MigrationCost};
pub use metrics::{DecisionCounters, EpochMetrics, SimReport};
pub use policy::{
    FullRebalance, GreedyPolicy, MPartitionPolicy, NoRebalance, Policy, ThresholdTriggered,
};
pub use process::{run as run_process, ProcessSimConfig};
pub use trace::{replay, TraceWorkload};
pub use workload::{Diurnal, Workload, WorkloadConfig};
