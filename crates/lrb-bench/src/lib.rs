//! # lrb-bench — the experiment suite (T1–T14)
//!
//! One public function per experiment table in DESIGN.md's experiment
//! index; the `tables` bench target and the `experiments` binary both just
//! call these and print the results. Timing figures F1–F3 live in the
//! criterion benches (`benches/scaling.rs`, `benches/cost_ptas.rs`,
//! `benches/baseline.rs`).

pub mod common;
pub mod cost_experiments;
pub mod extensions;
pub mod hardness;
pub mod ratio_experiments;
pub mod shootout;
pub mod webfarm;

pub use common::Scale;

use lrb_harness::Table;

/// An experiment entry point: takes a scale, returns a table.
pub type Experiment = fn(Scale) -> Table;

/// Every experiment, in index order, as (id, runner) pairs.
pub fn all_experiments() -> Vec<(&'static str, Experiment)> {
    vec![
        ("t1", ratio_experiments::t1_greedy_ratio),
        ("t2", ratio_experiments::t2_greedy_tight),
        ("t3", ratio_experiments::t3_g1_bound),
        ("t4", ratio_experiments::t4_partition_ratio),
        ("t5", ratio_experiments::t5_partition_tight),
        ("t6", ratio_experiments::t6_partition_moves),
        ("t7", cost_experiments::t7_cost_partition),
        ("t8", cost_experiments::t8_ptas_quality),
        ("t9", shootout::t9_shootout),
        ("t10", hardness::t10_hardness_3dm),
        ("t11", hardness::t11_conflict),
        ("t12", webfarm::t12_webfarm),
        ("t13", shootout::t13_crossover),
        ("t14", shootout::t14_threshold_ablation),
        ("t15", extensions::t15_constrained),
        ("t16", extensions::t16_process_migration),
        ("t17", extensions::t17_greedy_order),
        ("t18", extensions::t18_conflict_quality),
        ("t19", hardness::t19_gap_rounding_on_gadgets),
    ]
}
