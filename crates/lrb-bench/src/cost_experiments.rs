//! Experiments T7–T8: the arbitrary-cost variant and the PTAS.

use lrb_core::cost_partition;
use lrb_core::model::Instance;
use lrb_core::ptas::{self, Precision};
use lrb_harness::{run_parallel, seed_for, Summary, Table};
use lrb_instances::generators::{CostModel, GeneratorConfig, PlacementModel, SizeDistribution};

use crate::common::{ratio, Scale};

fn cost_cells(scale: Scale, master_seed: u64, n_max: usize) -> Vec<(Instance, u64)> {
    let mut cells = Vec::new();
    let mut id = 0u64;
    for &cost_model in &[
        CostModel::Uniform { lo: 1, hi: 10 },
        CostModel::ProportionalToSize { divisor: 10 },
    ] {
        for &(n, m) in &[(8usize, 2usize), (n_max.min(10), 3)] {
            for _ in 0..scale.trials() {
                let cfg = GeneratorConfig {
                    n,
                    m,
                    sizes: SizeDistribution::Uniform { lo: 10, hi: 100 },
                    placement: PlacementModel::Random,
                    costs: cost_model,
                };
                let inst = cfg.generate(seed_for(master_seed, id));
                id += 1;
                let total = inst.total_cost();
                for budget in [total / 8, total / 4, total / 2] {
                    cells.push((inst.clone(), budget));
                }
            }
        }
    }
    cells
}

/// T7 — §3.2: arbitrary-cost PARTITION stays within budget; ratio against
/// the exact budgeted optimum.
pub fn t7_cost_partition(scale: Scale) -> Table {
    let cells = cost_cells(scale, 0xA7, 10);
    let rows = run_parallel(cells, lrb_harness::default_threads(), |(inst, budget)| {
        let opt = lrb_exact::optimal_makespan_cost(inst, *budget);
        let run = cost_partition::rebalance(inst, *budget).expect("cost partition runs");
        let budget_ok = run.outcome.cost() <= *budget;
        (ratio(run.outcome.makespan(), opt), budget_ok)
    });
    let ratios: Vec<f64> = rows.iter().map(|&(r, _)| r).collect();
    let budget_violations = rows.iter().filter(|&&(_, ok)| !ok).count();
    // The paper's guarantee is 1.5 + eps; count cells above 1.5 + 0.05.
    let above_bound = ratios.iter().filter(|&&r| r > 1.55).count();
    let s = Summary::of(&ratios);
    let mut table = Table::new(
        "T7: cost-PARTITION / OPT_B ratio (bound ~1.5+eps), budget adherence",
        &[
            "cells",
            "mean",
            "median",
            "max",
            ">1.55",
            "budget violations",
        ],
    );
    table.row(&[
        s.n.to_string(),
        format!("{:.3}", s.mean),
        format!("{:.3}", s.median),
        format!("{:.3}", s.max),
        above_bound.to_string(),
        budget_violations.to_string(),
    ]);
    table
}

/// T8 — Theorem 4: the PTAS achieves `(1 + 5/q)·OPT_B` within budget, with
/// quality improving as the precision rises.
pub fn t8_ptas_quality(scale: Scale) -> Table {
    let mut table = Table::new(
        "T8: PTAS ratio vs precision (bound 1 + 5/q)",
        &[
            "q",
            "eps=5/q",
            "cells",
            "mean",
            "max",
            "bound violations",
            "budget violations",
        ],
    );
    for q in [2u64, 5, 8] {
        let cells = cost_cells(scale, 0xA8 + q, 8);
        let rows = run_parallel(cells, lrb_harness::default_threads(), |(inst, budget)| {
            let opt = lrb_exact::optimal_makespan_cost(inst, *budget);
            let run = ptas::rebalance(inst, *budget, Precision::from_q(q)).expect("ptas runs");
            let ms = run.outcome.makespan();
            // Bound with the +1 integer slack of the internal scaling.
            let bound_ok =
                (ms as u128) * (q as u128) <= (opt as u128) * (q as u128 + 5) + q as u128;
            (ratio(ms, opt), bound_ok, run.outcome.cost() <= *budget)
        });
        let ratios: Vec<f64> = rows.iter().map(|&(r, _, _)| r).collect();
        let bound_viol = rows.iter().filter(|&&(_, ok, _)| !ok).count();
        let budget_viol = rows.iter().filter(|&&(_, _, ok)| !ok).count();
        let s = Summary::of(&ratios);
        table.row(&[
            q.to_string(),
            format!("{:.2}", 5.0 / q as f64),
            s.n.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            bound_viol.to_string(),
            budget_viol.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t7_no_budget_violations() {
        let t = t7_cost_partition(Scale::Quick);
        let last = t.render().lines().last().unwrap().to_string();
        assert!(last.trim().ends_with('0'), "{last}");
    }

    #[test]
    fn t8_no_violations_anywhere() {
        let t = t8_ptas_quality(Scale::Quick);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells[cells.len() - 1], "0", "budget violations: {line}");
            assert_eq!(cells[cells.len() - 2], "0", "bound violations: {line}");
        }
    }
}
