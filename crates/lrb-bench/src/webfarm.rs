//! Experiment T12: the motivating web-farm scenario (§1, Linder–Shah).
//!
//! A drifting web farm is simulated under every policy and a sweep of
//! per-epoch move budgets; the table reports imbalance statistics and
//! migration totals. The paper's qualitative claim — a small number of
//! moves captures most of full rebalancing's benefit — shows up as the
//! imbalance column flattening long before the budget reaches "unlimited".

use lrb_core::model::Budget;
use lrb_harness::Table;
use lrb_sim::{
    run_farm, FarmConfig, FullRebalance, GreedyPolicy, MPartitionPolicy, MigrationCost,
    NoRebalance, Policy, WorkloadConfig,
};

use crate::common::Scale;

fn farm_config(scale: Scale, budget: Budget) -> FarmConfig {
    let (sites, servers, epochs) = match scale {
        Scale::Quick => (120, 8, 60),
        Scale::Full => (400, 16, 200),
    };
    FarmConfig {
        num_servers: servers,
        epochs,
        budget,
        workload: WorkloadConfig::default_web(sites),
        migration_cost: MigrationCost::Unit,
        seed: 0xF12,
    }
}

/// T12 — policies × budgets on the web farm.
pub fn t12_webfarm(scale: Scale) -> Table {
    let mut table = Table::new(
        "T12: web farm under drift (mean/median imbalance, total migrations)",
        &["policy", "k/epoch", "mean imb", "median imb", "migrations"],
    );

    // The no-op and unlimited baselines.
    let cfg = farm_config(scale, Budget::Moves(0));
    let r = run_farm(&cfg, &mut NoRebalance);
    push_row(&mut table, &r, "0");
    for &k in &[2usize, 8, 32] {
        let cfg = farm_config(scale, Budget::Moves(k));
        for policy in [&mut GreedyPolicy as &mut dyn Policy, &mut MPartitionPolicy] {
            let r = run_farm(&cfg, policy);
            push_row(&mut table, &r, &k.to_string());
        }
    }
    let cfg = farm_config(scale, Budget::Moves(usize::MAX));
    let r = run_farm(&cfg, &mut FullRebalance);
    push_row(&mut table, &r, "inf");
    table
}

fn push_row(table: &mut Table, r: &lrb_sim::SimReport, k: &str) {
    table.row(&[
        r.policy.clone(),
        k.to_string(),
        format!("{:.3}", r.mean_imbalance()),
        format!("{:.3}", r.percentile_imbalance(50.0)),
        r.total_migrations().to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t12_shapes_hold() {
        let t = t12_webfarm(Scale::Quick);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(|s| s.to_string()).collect())
            .collect();
        let imb = |row: &Vec<String>| -> f64 { row[2].parse().unwrap() };
        let no_rebalance = &rows[0];
        let full = rows.last().unwrap();
        // Rebalancing beats drifting; the unlimited baseline is at least as
        // good as any bounded row (small tolerance for LPT noise).
        for row in &rows[1..] {
            assert!(imb(row) <= imb(no_rebalance) + 1e-9, "{row:?}");
        }
        for row in &rows[..rows.len() - 1] {
            assert!(imb(full) <= imb(row) + 0.05, "{row:?}");
        }
        // More budget doesn't substantially hurt m-partition (trajectories
        // diverge under drift, so this is a tolerance check, not monotone).
        let mp: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == "m-partition").collect();
        assert!(imb(mp.last().unwrap()) <= imb(mp[0]) + 0.05);
    }
}
