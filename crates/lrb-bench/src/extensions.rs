//! Experiments T15–T16: the §5 constrained variant and the process
//! migration scenario.

use lrb_core::constrained::{self, ConstrainedInstance};
use lrb_core::model::Budget;
use lrb_harness::{run_parallel, seed_for, Summary, Table};
use lrb_instances::generators::{GeneratorConfig, PlacementModel, SizeDistribution};
use lrb_sim::{run_process, MPartitionPolicy, NoRebalance, ProcessSimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{ratio, Scale};

fn random_constrained(n: usize, m: usize, density: f64, seed: u64) -> ConstrainedInstance {
    let base = GeneratorConfig {
        n,
        m,
        sizes: SizeDistribution::Uniform { lo: 1, hi: 30 },
        placement: PlacementModel::Random,
        costs: lrb_instances::generators::CostModel::Unit,
    }
    .generate(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
    let allowed: Vec<Vec<usize>> = (0..n)
        .map(|j| {
            let home = base.initial_proc(j);
            let mut list = vec![home];
            for p in 0..m {
                if p != home && rng.gen_bool(density) {
                    list.push(p);
                }
            }
            list
        })
        .collect();
    ConstrainedInstance::new(base, allowed).expect("valid constrained instance")
}

/// T15 — Constrained Load Rebalancing (§5, Corollary 1): the LP
/// 2-approximation and the constrained GREEDY heuristic versus the exact
/// constrained oracle, across eligibility densities.
pub fn t15_constrained(scale: Scale) -> Table {
    let mut table = Table::new(
        "T15: constrained rebalancing — ratio vs exact (LP bound 2; greedy is heuristic)",
        &[
            "density",
            "cells",
            "lp mean",
            "lp max",
            "greedy mean",
            "greedy max",
            "lp>2",
        ],
    );
    for &density in &[0.25f64, 0.5, 0.9] {
        let cells: Vec<u64> = (0..scale.trials() as u64 * 3)
            .map(|t| seed_for(0xB5, t * 7 + (density * 100.0) as u64))
            .collect();
        let rows = run_parallel(cells, lrb_harness::default_threads(), |&seed| {
            let c = random_constrained(8, 3, density, seed);
            let k = 3usize;
            let (opt, _) = lrb_exact::constrained::solve(&c, Budget::Moves(k));
            let lp = lrb_lp::constrained::rebalance(&c, k as u64).expect("lp runs");
            let g = constrained::greedy(&c, k).expect("greedy runs");
            assert!(c.respects(lp.outcome.assignment()));
            assert!(c.respects(g.assignment()));
            (
                ratio(lp.outcome.makespan(), opt),
                ratio(g.makespan(), opt),
                lp.outcome.makespan() <= 2 * opt,
            )
        });
        let lps: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let gs: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let over = rows.iter().filter(|r| !r.2).count();
        let (sl, sg) = (Summary::of(&lps), Summary::of(&gs));
        table.row(&[
            format!("{density:.2}"),
            sl.n.to_string(),
            format!("{:.3}", sl.mean),
            format!("{:.3}", sl.max),
            format!("{:.3}", sg.mean),
            format!("{:.3}", sg.max),
            over.to_string(),
        ]);
    }
    table
}

/// T16 — the process-migration scenario of the paper's introduction:
/// heavy-tailed lifetimes, memory-footprint migration costs, cost budget
/// per epoch.
pub fn t16_process_migration(scale: Scale) -> Table {
    let mut table = Table::new(
        "T16: process migration (heavy-tailed lifetimes, cost budget/epoch)",
        &[
            "policy",
            "cost budget",
            "mean imb",
            "median imb",
            "migrations",
            "total cost",
        ],
    );
    let epochs = match scale {
        Scale::Quick => 80,
        Scale::Full => 250,
    };
    let mut base = ProcessSimConfig::default_cpu_farm();
    base.epochs = epochs;
    base.seed = 0xF16;

    let mut cfg = base;
    cfg.budget = Budget::Cost(0);
    push(&mut table, &run_process(&cfg, &mut NoRebalance), "0");
    for &b in &[5u64, 20, 80] {
        let mut cfg = base;
        cfg.budget = Budget::Cost(b);
        push(
            &mut table,
            &run_process(&cfg, &mut MPartitionPolicy),
            &b.to_string(),
        );
    }
    table
}

/// T17 — ablation: GREEDY's reinsertion order. The paper allows any order
/// (Step 2 "in an arbitrary order"); the guarantee is order-independent,
/// but realized quality is not — descending (LPT-like) ordering should
/// dominate, and the adversarial ascending order should be worst.
pub fn t17_greedy_order(scale: Scale) -> Table {
    use lrb_core::greedy::{rebalance_with_order, ReinsertOrder};
    let mut table = Table::new(
        "T17: GREEDY reinsertion-order ablation (ratio vs exact OPT, mean/max)",
        &["order", "cells", "mean", "max", "bound violations"],
    );
    let cells: Vec<u64> = (0..scale.trials() as u64 * 12)
        .map(|t| seed_for(0xB7, t))
        .collect();
    for (name, order) in [
        ("descending", ReinsertOrder::Descending),
        ("removal", ReinsertOrder::RemovalOrder),
        ("ascending", ReinsertOrder::Ascending),
    ] {
        let rows = run_parallel(cells.clone(), lrb_harness::default_threads(), |&seed| {
            let inst = GeneratorConfig {
                n: 10,
                m: 3,
                sizes: SizeDistribution::Uniform { lo: 1, hi: 100 },
                placement: PlacementModel::Random,
                costs: lrb_instances::generators::CostModel::Unit,
            }
            .generate(seed);
            let k = 4usize;
            let opt = lrb_exact::optimal_makespan_moves(&inst, k);
            let (out, _) = rebalance_with_order(&inst, k, order).expect("greedy runs");
            let m = inst.num_procs() as u64;
            let ok = (out.makespan() as u128) * (m as u128) <= (opt as u128) * (2 * m - 1) as u128;
            (ratio(out.makespan(), opt), ok)
        });
        let rs: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let viol = rows.iter().filter(|r| !r.1).count();
        let s = Summary::of(&rs);
        table.row(&[
            name.to_string(),
            s.n.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            viol.to_string(),
        ]);
    }
    table
}

/// T18 — Conflict Scheduling (§5, Theorem 7): first-fit-decreasing versus
/// the exact conflict-aware optimum on random conflict graphs. Feasibility
/// always agrees with the exact solver; makespan quality degrades as the
/// conflict density grows — the theorem says no algorithm can bound that
/// gap in general.
pub fn t18_conflict_quality(scale: Scale) -> Table {
    use lrb_exact::conflict::ConflictProblem;
    let mut table = Table::new(
        "T18: conflict scheduling — FFD heuristic vs exact (feasibility must agree)",
        &[
            "density",
            "cells",
            "feasible",
            "ffd mean ratio",
            "ffd max ratio",
        ],
    );
    for &density in &[0.0f64, 0.15, 0.35] {
        let cells: Vec<u64> = (0..scale.trials() as u64 * 6)
            .map(|t| seed_for(0xB8, t * 3 + (density * 100.0) as u64))
            .collect();
        let rows = run_parallel(cells, lrb_harness::default_threads(), |&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 8usize;
            let m = 3usize;
            let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
            let mut conflicts = Vec::new();
            for a in 0..n {
                for b in a + 1..n {
                    if rng.gen_bool(density) {
                        conflicts.push((a, b));
                    }
                }
            }
            let p = ConflictProblem::new(n, m, &conflicts);
            match (p.min_makespan(&sizes), p.first_fit_decreasing(&sizes)) {
                (Some((opt, _)), Some(h)) => {
                    let mut loads = vec![0u64; m];
                    for (j, &q) in h.iter().enumerate() {
                        loads[q] += sizes[j];
                    }
                    let hms = loads.into_iter().max().unwrap_or(0);
                    Some(ratio(hms, opt))
                }
                (None, None) => None,
                _ => panic!("feasibility disagreement"),
            }
        });
        let feasible: Vec<f64> = rows.iter().flatten().copied().collect();
        let s = Summary::of(&feasible);
        table.row(&[
            format!("{density:.2}"),
            rows.len().to_string(),
            feasible.len().to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
        ]);
    }
    table
}

fn push(table: &mut Table, r: &lrb_sim::SimReport, budget: &str) {
    table.row(&[
        r.policy.clone(),
        budget.to_string(),
        format!("{:.3}", r.mean_imbalance()),
        format!("{:.3}", r.percentile_imbalance(50.0)),
        r.total_migrations().to_string(),
        r.total_cost().to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t15_lp_never_beyond_factor_two() {
        let t = t15_constrained(Scale::Quick);
        for line in t.to_csv().lines().skip(1) {
            assert!(line.ends_with(",0"), "LP beyond factor 2: {line}");
        }
    }

    #[test]
    fn t17_descending_dominates_ascending() {
        let t = t17_greedy_order(Scale::Quick);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let mean = |r: &Vec<String>| -> f64 { r[2].parse().unwrap() };
        // rows: descending, removal, ascending.
        assert!(mean(&rows[0]) <= mean(&rows[2]) + 1e-9);
        // No Theorem 1 violations under any order.
        for r in &rows {
            assert_eq!(r[4], "0", "{r:?}");
        }
    }

    #[test]
    fn t18_feasibility_always_agrees() {
        // The experiment panics internally on any disagreement; surviving
        // the run plus sane ratios is the assertion.
        let t = t18_conflict_quality(Scale::Quick);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let mean: f64 = cells[3].parse().unwrap();
            assert!(mean >= 1.0 - 1e-9, "{line}");
        }
    }

    #[test]
    fn t16_more_budget_means_better_balance() {
        let t = t16_process_migration(Scale::Quick);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let imb = |r: &Vec<String>| -> f64 { r[2].parse().unwrap() };
        // The largest budget beats doing nothing.
        assert!(imb(rows.last().unwrap()) < imb(&rows[0]));
    }
}
