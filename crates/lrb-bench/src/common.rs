//! Shared experiment configuration and helpers.

use lrb_instances::generators::{GeneratorConfig, PlacementModel, SizeDistribution};

/// Global experiment scale knob. `Quick` is used by `cargo bench` smoke
/// runs and CI; `Full` by the recorded EXPERIMENTS.md numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Few trials — seconds.
    Quick,
    /// Full trial counts — minutes.
    Full,
}

impl Scale {
    /// Read from the `LRB_SCALE` environment variable (`full` or anything
    /// else for quick).
    pub fn from_env() -> Scale {
        match std::env::var("LRB_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Trials per sweep cell.
    pub fn trials(&self) -> usize {
        match self {
            Scale::Quick => 5,
            Scale::Full => 30,
        }
    }
}

/// The size distributions every ratio experiment sweeps.
pub fn standard_distributions() -> Vec<(&'static str, SizeDistribution)> {
    vec![
        ("uniform", SizeDistribution::Uniform { lo: 1, hi: 100 }),
        ("exponential", SizeDistribution::Exponential { mean: 30.0 }),
        (
            "pareto",
            SizeDistribution::Pareto {
                scale: 5,
                alpha: 1.3,
            },
        ),
    ]
}

/// A generator for small oracle-checkable instances.
pub fn small_config(n: usize, m: usize, dist: SizeDistribution) -> GeneratorConfig {
    GeneratorConfig {
        n,
        m,
        sizes: dist,
        placement: PlacementModel::Random,
        costs: lrb_instances::generators::CostModel::Unit,
    }
}

/// Ratio helper guarding a zero denominator (a zero optimum means a zero
/// numerator too — empty or all-zero instances — so the ratio is 1).
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(0, 0), 1.0);
        assert_eq!(ratio(3, 2), 1.5);
    }

    #[test]
    fn scale_trials() {
        assert!(Scale::Full.trials() > Scale::Quick.trials());
    }

    #[test]
    fn standard_distributions_nonempty() {
        assert_eq!(standard_distributions().len(), 3);
    }
}
