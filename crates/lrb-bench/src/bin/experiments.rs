//! Run experiment tables by id: `cargo run -p lrb-bench --release --bin
//! experiments -- t4 t12` (no arguments = all).

use lrb_bench::{all_experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    let mut matched = false;
    for (id, run) in all_experiments() {
        if args.is_empty() || args.iter().any(|a| a == id) {
            matched = true;
            println!("{}", run(scale).render());
        }
    }
    if !matched {
        eprintln!(
            "unknown experiment id(s); available: {}",
            all_experiments()
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }
}
