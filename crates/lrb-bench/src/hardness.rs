//! Experiments T10–T11: the §5 hardness reductions, validated end-to-end.
//!
//! For each 3DM instance (hand-crafted yes/no cases plus random ones) the
//! reduction gadget must be feasible exactly when the 3DM instance is
//! matchable — both directions checked with exact solvers.

use lrb_exact::conflict::ConflictProblem;
use lrb_harness::Table;
use lrb_instances::reductions::{theorem6_gadget, theorem7_gadget, ThreeDm};

use crate::common::Scale;

fn test_suite(scale: Scale) -> Vec<(String, ThreeDm)> {
    let mut cases: Vec<(String, ThreeDm)> = vec![
        (
            "yes/hand-n2".into(),
            ThreeDm::new(2, vec![(0, 0, 0), (1, 1, 1), (0, 1, 0)]),
        ),
        (
            "no/hand-n2".into(),
            ThreeDm::new(2, vec![(0, 0, 0), (1, 0, 1), (1, 0, 0)]),
        ),
        (
            "yes/hand-n3".into(),
            ThreeDm::new(3, vec![(0, 1, 2), (1, 2, 0), (2, 0, 1), (0, 0, 0)]),
        ),
        (
            "no/hand-n3".into(),
            ThreeDm::new(3, vec![(0, 0, 0), (1, 1, 1), (0, 1, 2)]),
        ),
    ];
    for seed in 0..scale.trials() as u64 {
        cases.push((
            format!("yes/random-{seed}"),
            ThreeDm::random_matchable(3, 2, seed),
        ));
        cases.push((format!("rand/random-{seed}"), ThreeDm::random(3, 4, seed)));
    }
    cases
}

/// T10 — Theorem 6: the two-cost GAP gadget is feasible (makespan 2 within
/// budget `(m+n)p`) iff the 3DM instance is matchable.
pub fn t10_hardness_3dm(scale: Scale) -> Table {
    let mut table = Table::new(
        "T10: Theorem 6 reduction (two-valued costs): gadget feasible <=> 3DM matchable",
        &["case", "matchable", "gadget feasible", "agree"],
    );
    for (name, tdm) in test_suite(scale) {
        let matchable = tdm.is_matchable();
        let feasible = theorem6_gadget(&tdm, 1, 100).feasible();
        table.row(&[
            name,
            matchable.to_string(),
            feasible.to_string(),
            (matchable == feasible).to_string(),
        ]);
    }
    table
}

/// T11 — Theorem 7: the conflict-scheduling gadget admits an assignment iff
/// the 3DM instance is matchable.
pub fn t11_conflict(scale: Scale) -> Table {
    let mut table = Table::new(
        "T11: Theorem 7 reduction (conflict scheduling): feasible <=> 3DM matchable",
        &["case", "matchable", "gadget feasible", "agree"],
    );
    for (name, tdm) in test_suite(scale) {
        let matchable = tdm.is_matchable();
        let g = theorem7_gadget(&tdm);
        let feasible = ConflictProblem::new(g.num_jobs, g.num_machines, &g.conflicts)
            .feasible_assignment()
            .is_some();
        table.row(&[
            name,
            matchable.to_string(),
            feasible.to_string(),
            (matchable == feasible).to_string(),
        ]);
    }
    table
}

/// T19 — why the 2-approximation cannot decide 3DM: run the general GAP
/// LP + rounding on Theorem 6 gadgets at the separating makespan `T = 2`.
/// On unmatchable instances the *fractional* relaxation can still fit the
/// budget and the rounding only promises makespan `≤ 2T = 4` — landing in
/// exactly the gap the `ρ < 3/2` hardness says no algorithm can close.
pub fn t19_gap_rounding_on_gadgets(scale: Scale) -> Table {
    use lrb_lp::general_gap::{solve_at, GapInstance};
    let mut table = Table::new(
        "T19: GAP LP+rounding on Theorem 6 gadgets at T=2 (why 2-approx can't decide 3DM)",
        &[
            "case",
            "matchable",
            "lp fits budget",
            "rounded makespan",
            "rounded fits budget",
        ],
    );
    for (name, tdm) in test_suite(scale) {
        let g = theorem6_gadget(&tdm, 1, 100);
        let costs: Vec<Vec<u64>> = (0..g.num_jobs())
            .map(|j| (0..g.num_machines).map(|p| g.cost(j, p)).collect())
            .collect();
        let inst = GapInstance::new(g.num_machines, g.sizes.clone(), costs);
        let (lp_fits, r_makespan, r_fits) = match solve_at(&inst, g.target_makespan) {
            Some(sol) => (
                sol.lp_cost <= g.budget as f64 + 1e-6,
                sol.makespan.to_string(),
                sol.cost <= g.budget,
            ),
            None => (false, "-".into(), false),
        };
        table.row(&[
            name,
            tdm.is_matchable().to_string(),
            lp_fits.to_string(),
            r_makespan,
            r_fits.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_agree(t: &Table) {
        for line in t.to_csv().lines().skip(1) {
            assert!(line.ends_with("true"), "disagreement: {line}");
        }
    }

    #[test]
    fn t10_reduction_is_faithful() {
        all_agree(&t10_hardness_3dm(Scale::Quick));
    }

    #[test]
    fn t19_matchable_gadgets_round_within_budget() {
        let t = t19_gap_rounding_on_gadgets(Scale::Quick);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let matchable = cells[1] == "true";
            if matchable {
                // Matchable gadgets: the LP fits the budget, and rounding
                // stays within budget at makespan <= 2T = 4.
                assert_eq!(cells[2], "true", "{line}");
                assert_eq!(cells[4], "true", "{line}");
                let ms: u64 = cells[3].parse().unwrap();
                assert!(ms <= 4, "{line}");
            }
        }
    }

    #[test]
    fn t11_reduction_is_faithful() {
        all_agree(&t11_conflict(Scale::Quick));
    }
}
