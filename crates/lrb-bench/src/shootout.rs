//! Experiments T9, T13, T14: algorithm comparisons and ablations.

use std::time::Instant;

use lrb_core::bounds;
use lrb_core::model::{Budget, Instance};
use lrb_core::mpartition::{self, ThresholdSearch};
use lrb_core::{greedy, lpt};
use lrb_harness::{geo_mean, run_parallel, seed_for, Table};
use lrb_instances::generators::{GeneratorConfig, PlacementModel, SizeDistribution};

use crate::common::{ratio, Scale};

fn medium_instance(n: usize, m: usize, seed: u64) -> Instance {
    GeneratorConfig {
        n,
        m,
        sizes: SizeDistribution::Pareto {
            scale: 5,
            alpha: 1.4,
        },
        placement: PlacementModel::Skewed { skew: 1.0 },
        costs: lrb_instances::generators::CostModel::Unit,
    }
    .generate(seed)
}

/// T9 — the shootout: GREEDY vs M-PARTITION vs the Shmoys–Tardos LP
/// baseline, makespan relative to the instance lower bound, across move
/// budgets. (The LP baseline gets the §2 unit-cost reduction.)
pub fn t9_shootout(scale: Scale) -> Table {
    let mut table = Table::new(
        "T9: GREEDY vs M-PARTITION vs Shmoys-Tardos (makespan / lower bound, geo-mean)",
        &[
            "n",
            "m",
            "k",
            "greedy",
            "m-partition",
            "st-lp",
            "st-lp time x",
        ],
    );
    for &(n, m) in &[(30usize, 4usize), (60, 6)] {
        for &k in &[2usize, 4, 8, 16] {
            let seeds: Vec<u64> = (0..scale.trials() as u64)
                .map(|t| seed_for(0xA9, t * 100 + n as u64 + k as u64))
                .collect();
            let rows = run_parallel(seeds, lrb_harness::default_threads(), |&seed| {
                let inst = medium_instance(n, m, seed);
                let lb = bounds::lower_bound(&inst, Budget::Moves(k)).max(1);

                let t0 = Instant::now();
                let g = greedy::rebalance(&inst, k).expect("greedy").makespan();
                let tg = t0.elapsed();

                let t0 = Instant::now();
                let p = mpartition::rebalance(&inst, k)
                    .expect("mp")
                    .outcome
                    .makespan();
                let tp = t0.elapsed().max(tg);

                let t0 = Instant::now();
                let st = lrb_lp::rebalance(&inst, k as u64)
                    .expect("st")
                    .outcome
                    .makespan();
                let ts = t0.elapsed();

                (
                    ratio(g, lb),
                    ratio(p, lb),
                    ratio(st, lb),
                    ts.as_secs_f64() / tp.as_secs_f64().max(1e-9),
                )
            });
            let gs: Vec<f64> = rows.iter().map(|r| r.0).collect();
            let ps: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let sts: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let slow: f64 = rows.iter().map(|r| r.3).sum::<f64>() / rows.len().max(1) as f64;
            table.row(&[
                n.to_string(),
                m.to_string(),
                k.to_string(),
                format!("{:.3}", geo_mean(&gs)),
                format!("{:.3}", geo_mean(&ps)),
                format!("{:.3}", geo_mean(&sts)),
                format!("{slow:.0}x"),
            ]);
        }
    }
    table
}

/// T13 — move-budget crossover: the smallest `k` at which bounded
/// rebalancing gets within 25% / 10% / 2% of full (LPT-from-scratch)
/// rebalancing. The paper's qualitative claim is that most of the benefit
/// arrives at small `k` — visible as the 25% and 10% columns sitting far
/// below `n`.
pub fn t13_crossover(scale: Scale) -> Table {
    let mut table = Table::new(
        "T13: smallest k for M-PARTITION within x% of full rebalancing (mean over trials)",
        &["n", "m", "k(25%)", "k(10%)", "k(2%)", "k(25%)/n"],
    );
    for &(n, m) in &[(40usize, 4usize), (60, 6), (80, 8)] {
        let seeds: Vec<u64> = (0..scale.trials() as u64)
            .map(|t| seed_for(0xB3, t * 31 + n as u64))
            .collect();
        let rows = run_parallel(seeds, lrb_harness::default_threads(), |&seed| {
            let inst = medium_instance(n, m, seed);
            let full = lpt::full_rebalance(&inst).expect("lpt").makespan();
            // Smallest k with makespan <= full * (1 + pct/100), per pct.
            let mut ks = [n; 3];
            let targets = [full + full / 4, full + full / 10, full + full / 50];
            let mut found = 0;
            for k in 0..=n {
                let p = mpartition::rebalance(&inst, k)
                    .expect("mp")
                    .outcome
                    .makespan();
                for (i, &t) in targets.iter().enumerate() {
                    if ks[i] == n && p <= t {
                        ks[i] = k;
                        found += 1;
                    }
                }
                if found == 3 {
                    break;
                }
            }
            ks
        });
        let mean = |i: usize| -> f64 {
            rows.iter().map(|ks| ks[i] as f64).sum::<f64>() / rows.len().max(1) as f64
        };
        table.row(&[
            n.to_string(),
            m.to_string(),
            format!("{:.1}", mean(0)),
            format!("{:.1}", mean(1)),
            format!("{:.1}", mean(2)),
            format!("{:.2}", mean(0) / n as f64),
        ]);
    }
    table
}

/// T14 — §3.1 ablation: three threshold-search strategies — the plain
/// increasing scan, the paper's incremental event-driven scan, and binary
/// search — must agree on the chosen threshold; they differ in probe
/// counts and per-probe cost.
pub fn t14_threshold_ablation(scale: Scale) -> Table {
    let mut table = Table::new(
        "T14: M-PARTITION threshold search ablation (scan / incremental / binary)",
        &[
            "n",
            "k",
            "agree",
            "scan probes",
            "incr probes",
            "binary probes",
        ],
    );
    for &n in &[100usize, 1000] {
        for &kfrac in &[0usize, 8, 2] {
            let k = n.checked_div(kfrac).unwrap_or(0);
            let seeds: Vec<u64> = (0..scale.trials() as u64)
                .map(|t| seed_for(0xB4, t * 17 + n as u64 + k as u64))
                .collect();
            let rows = run_parallel(seeds, lrb_harness::default_threads(), |&seed| {
                let inst = medium_instance(n, 8, seed);
                let scan =
                    mpartition::rebalance_with(&inst, k, ThresholdSearch::Scan).expect("scan");
                let inc = mpartition::rebalance_with(&inst, k, ThresholdSearch::Incremental)
                    .expect("incremental");
                let bin =
                    mpartition::rebalance_with(&inst, k, ThresholdSearch::Binary).expect("binary");
                let agree = scan.threshold == bin.threshold
                    && scan.threshold == inc.threshold
                    && scan.outcome.makespan() == bin.outcome.makespan()
                    && scan.outcome.makespan() == inc.outcome.makespan();
                (agree, scan.probes, inc.probes, bin.probes)
            });
            let agree = rows.iter().filter(|r| r.0).count();
            let mean = |f: fn(&(bool, usize, usize, usize)) -> usize| -> f64 {
                rows.iter().map(|r| f(r) as f64).sum::<f64>() / rows.len() as f64
            };
            table.row(&[
                n.to_string(),
                k.to_string(),
                format!("{}/{}", agree, rows.len()),
                format!("{:.1}", mean(|r| r.1)),
                format!("{:.1}", mean(|r| r.2)),
                format!("{:.1}", mean(|r| r.3)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t9_partition_never_loses_to_greedy_much() {
        let t = t9_shootout(Scale::Quick);
        assert_eq!(t.len(), 8);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let g: f64 = cells[3].parse().unwrap();
            let p: f64 = cells[4].parse().unwrap();
            let st: f64 = cells[5].parse().unwrap();
            // Shapes from the paper: all three are >= 1 (vs a lower bound),
            // M-PARTITION competitive with GREEDY, ST within its factor 2.
            assert!(g >= 1.0 && p >= 1.0 && st >= 1.0, "{line}");
            assert!(p <= g + 0.35, "m-partition far worse than greedy: {line}");
            assert!(st <= 2.2, "st-lp beyond its guarantee zone: {line}");
        }
    }

    #[test]
    fn t13_most_benefit_arrives_early() {
        let t = t13_crossover(Scale::Quick);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let n: f64 = cells[0].parse().unwrap();
            let k25: f64 = cells[2].parse().unwrap();
            let k10: f64 = cells[3].parse().unwrap();
            // Within-25% needs well under half the jobs; thresholds nest.
            assert!(k25 <= n / 2.0, "{line}");
            assert!(k25 <= k10, "{line}");
        }
    }

    #[test]
    fn t14_searches_agree() {
        let t = t14_threshold_ablation(Scale::Quick);
        for line in t.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let parts: Vec<&str> = cells[2].split('/').collect();
            assert_eq!(parts[0], parts[1], "disagreement: {line}");
        }
    }
}
