//! Experiments T1–T6: the unit-cost approximation guarantees, measured
//! against the exact oracle.

use lrb_core::bounds::within_ratio;
use lrb_core::greedy::{self, ReinsertOrder};
use lrb_core::model::Instance;
use lrb_core::{mpartition, partition};
use lrb_harness::{run_parallel, seed_for, Summary, Table};
use lrb_instances::adversarial;

use crate::common::{ratio, small_config, standard_distributions, Scale};

/// One measured cell of a ratio experiment.
struct Cell {
    inst: Instance,
    k: usize,
}

fn sweep_cells(scale: Scale, master_seed: u64) -> Vec<(String, Cell)> {
    let mut cells = Vec::new();
    let mut id = 0u64;
    for (dist_name, dist) in standard_distributions() {
        for &(n, m) in &[(8usize, 2usize), (10, 3), (12, 4)] {
            for trial in 0..scale.trials() {
                let cfg = small_config(n, m, dist);
                let inst = cfg.generate(seed_for(master_seed, id));
                id += 1;
                for &k in &[1usize, n / 4, n / 2, n] {
                    cells.push((
                        format!("{dist_name}/n={n}/m={m}/t={trial}"),
                        Cell {
                            inst: inst.clone(),
                            k,
                        },
                    ));
                }
            }
        }
    }
    cells
}

/// T1 — Theorem 1 upper bound: `GREEDY ≤ (2 − 1/m)·OPT` across random
/// instances, ratio measured against the exact oracle.
pub fn t1_greedy_ratio(scale: Scale) -> Table {
    let cells = sweep_cells(scale, 0xA1);
    let rows = run_parallel(cells, lrb_harness::default_threads(), |(_, cell)| {
        let opt = lrb_exact::optimal_makespan_moves(&cell.inst, cell.k);
        let g = greedy::rebalance(&cell.inst, cell.k)
            .expect("greedy runs")
            .makespan();
        let m = cell.inst.num_procs() as u64;
        // Theorem 1: g·m ≤ opt·(2m − 1).
        let ok = (g as u128) * (m as u128) <= (opt as u128) * (2 * m - 1) as u128;
        (ratio(g, opt), ok)
    });
    let ratios: Vec<f64> = rows.iter().map(|&(r, _)| r).collect();
    let violations = rows.iter().filter(|&&(_, ok)| !ok).count();
    let s = Summary::of(&ratios);

    let mut table = Table::new(
        "T1: GREEDY / OPT ratio (bound 2 - 1/m)",
        &["cells", "mean", "median", "max", "violations"],
    );
    table.row(&[
        s.n.to_string(),
        format!("{:.3}", s.mean),
        format!("{:.3}", s.median),
        format!("{:.3}", s.max),
        violations.to_string(),
    ]);
    table
}

/// T2 — Theorem 1 tightness: the adversarial construction drives GREEDY to
/// exactly `(2 − 1/m)·OPT`.
pub fn t2_greedy_tight(_scale: Scale) -> Table {
    let mut table = Table::new(
        "T2: GREEDY tightness construction (paper section 2)",
        &["m", "OPT", "GREEDY", "ratio", "bound 2-1/m"],
    );
    for m in 2..=12 {
        let case = adversarial::greedy_tightness(m);
        let (out, _) =
            greedy::rebalance_with_order(&case.instance, case.k, ReinsertOrder::Ascending)
                .expect("greedy runs");
        table.row(&[
            m.to_string(),
            case.opt.to_string(),
            out.makespan().to_string(),
            format!("{:.4}", ratio(out.makespan(), case.opt)),
            format!("{:.4}", 2.0 - 1.0 / m as f64),
        ]);
    }
    table
}

/// T3 — Lemma 1: the removal-phase makespan `G1` never exceeds `OPT`.
pub fn t3_g1_bound(scale: Scale) -> Table {
    let cells = sweep_cells(scale, 0xA3);
    let rows = run_parallel(cells, lrb_harness::default_threads(), |(_, cell)| {
        let opt = lrb_exact::optimal_makespan_moves(&cell.inst, cell.k);
        let g1 = greedy::g1_lower_bound(&cell.inst, cell.k);
        (ratio(g1, opt), g1 <= opt)
    });
    let ratios: Vec<f64> = rows.iter().map(|&(r, _)| r).collect();
    let violations = rows.iter().filter(|&&(_, ok)| !ok).count();
    let s = Summary::of(&ratios);
    let mut table = Table::new(
        "T3: G1 / OPT (Lemma 1: must be <= 1)",
        &["cells", "mean", "max", "violations"],
    );
    table.row(&[
        s.n.to_string(),
        format!("{:.3}", s.mean),
        format!("{:.3}", s.max),
        violations.to_string(),
    ]);
    table
}

/// T4 — Theorems 2–3: `M-PARTITION ≤ 1.5·OPT`, never exceeding the move
/// budget.
pub fn t4_partition_ratio(scale: Scale) -> Table {
    let cells = sweep_cells(scale, 0xA4);
    let rows = run_parallel(cells, lrb_harness::default_threads(), |(_, cell)| {
        let opt = lrb_exact::optimal_makespan_moves(&cell.inst, cell.k);
        let run = mpartition::rebalance(&cell.inst, cell.k).expect("m-partition runs");
        let ms = run.outcome.makespan();
        let ratio_ok = within_ratio(ms, opt, 3, 2);
        let budget_ok = run.outcome.moves() <= cell.k;
        (ratio(ms, opt), ratio_ok && budget_ok)
    });
    let ratios: Vec<f64> = rows.iter().map(|&(r, _)| r).collect();
    let violations = rows.iter().filter(|&&(_, ok)| !ok).count();
    let s = Summary::of(&ratios);
    let mut table = Table::new(
        "T4: M-PARTITION / OPT ratio (bound 1.5) + move budget",
        &["cells", "mean", "median", "max", "violations"],
    );
    table.row(&[
        s.n.to_string(),
        format!("{:.3}", s.mean),
        format!("{:.3}", s.median),
        format!("{:.3}", s.max),
        violations.to_string(),
    ]);
    table
}

/// T5 — Theorem 2 tightness: `PARTITION`'s 1.5 is attained exactly.
pub fn t5_partition_tight(_scale: Scale) -> Table {
    let mut table = Table::new(
        "T5: PARTITION tightness construction (paper section 3)",
        &["scale", "OPT", "M-PARTITION", "moves", "ratio"],
    );
    for s in [1u64, 2, 5, 10, 100, 1000] {
        let case = adversarial::partition_tightness(s);
        let run = mpartition::rebalance(&case.instance, case.k).expect("runs");
        table.row(&[
            s.to_string(),
            case.opt.to_string(),
            run.outcome.makespan().to_string(),
            run.outcome.moves().to_string(),
            format!("{:.4}", ratio(run.outcome.makespan(), case.opt)),
        ]);
    }
    table
}

/// T6 — Lemma 4: with the true optimum as its guess, `PARTITION` plans no
/// more moves than *any* algorithm achieving that makespan. Both sides are
/// evaluated at the same target: `planned_moves` at the candidate-threshold
/// region containing `OPT` (Lemma 5 makes behavior constant on the region)
/// versus the exact minimum move count to reach makespan `≤ OPT`.
pub fn t6_partition_moves(scale: Scale) -> Table {
    use lrb_core::profiles::Profiles;
    let cells = sweep_cells(scale, 0xA6);
    let rows = run_parallel(cells, lrb_harness::default_threads(), |(_, cell)| {
        let opt = lrb_exact::optimal_makespan_moves(&cell.inst, cell.k);
        // Minimum moves any algorithm needs to reach makespan <= opt.
        let opt_moves = lrb_exact::move_min::min_moves_to_achieve(&cell.inst, opt)
            .map(|(mv, _)| mv)
            .expect("opt is achievable by definition");
        // PARTITION's planned moves at the threshold region containing opt.
        let profiles = Profiles::new(&cell.inst);
        let cands = profiles.candidates();
        let idx = cands.partition_point(|&t| t <= opt).saturating_sub(1);
        let planned = partition::planned_moves(&profiles, cands[idx])
            .expect("the region containing OPT is feasible");
        (planned, opt_moves)
    });
    let le = rows.iter().filter(|&&(p, o)| p <= o).count();
    let mut table = Table::new(
        "T6: PARTITION planned moves at OPT's threshold vs exact min moves (Lemma 4)",
        &["cells", "mean planned", "mean opt-moves", "violations"],
    );
    let mp: f64 = rows.iter().map(|&(p, _)| p as f64).sum::<f64>() / rows.len().max(1) as f64;
    let mo: f64 = rows.iter().map(|&(_, o)| o as f64).sum::<f64>() / rows.len().max(1) as f64;
    table.row(&[
        rows.len().to_string(),
        format!("{mp:.2}"),
        format!("{mo:.2}"),
        (rows.len() - le).to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_reports_no_violations() {
        let t = t1_greedy_ratio(Scale::Quick);
        let rendered = t.render();
        // The violations column is the last cell of the single data row.
        let last = rendered.lines().last().unwrap();
        assert!(last.trim().ends_with('0'), "violations found:\n{rendered}");
    }

    #[test]
    fn t2_hits_the_bound_exactly() {
        let t = t2_greedy_tight(Scale::Quick);
        assert_eq!(t.len(), 11);
        let csv = t.to_csv();
        // For m = 2 the ratio is 1.5 exactly.
        assert!(csv.contains("1.5000"), "{csv}");
    }

    #[test]
    fn t3_no_violations() {
        let t = t3_g1_bound(Scale::Quick);
        let last = t.render().lines().last().unwrap().to_string();
        assert!(last.trim().ends_with('0'), "{last}");
    }

    #[test]
    fn t4_no_violations() {
        let t = t4_partition_ratio(Scale::Quick);
        let last = t.render().lines().last().unwrap().to_string();
        assert!(last.trim().ends_with('0'), "{last}");
    }

    #[test]
    fn t5_ratio_is_1_5() {
        let t = t5_partition_tight(Scale::Quick);
        let csv = t.to_csv();
        for line in csv.lines().skip(1) {
            assert!(line.ends_with("1.5000"), "{line}");
        }
    }

    #[test]
    fn t6_lemma_4_no_violations() {
        let t = t6_partition_moves(Scale::Quick);
        let last = t.render().lines().last().unwrap().to_string();
        assert!(last.trim().ends_with('0'), "{last}");
    }
}
