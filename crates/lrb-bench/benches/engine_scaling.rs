//! Batch-engine benchmarks: scratch reuse vs. fresh allocation, and the
//! thread-scaling curve over the standard bench ladder.
//!
//! Complements `lrb bench` (which emits the machine-readable BENCH_4.json):
//! this target is for interactive `cargo bench -p lrb-bench --bench
//! engine_scaling` comparisons while hacking on the engine or the scratch
//! arenas.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lrb_core::model::Budget;
use lrb_core::scratch::Scratch;
use lrb_core::{greedy, mpartition};
use lrb_engine::{solve_batch, BatchItem, BatchSolver, EngineConfig};
use lrb_harness::bench::{smoke_ladder, standard_ladder};

fn bench_engine_scaling(c: &mut Criterion) {
    // Scratch reuse vs. the allocating entry points on one rung.
    let rung = &standard_ladder(7, 8)[2]; // n=128
    let inst = &rung.instances[0];
    let k = match rung.budget {
        Budget::Moves(k) => k,
        Budget::Cost(b) => b as usize,
    };
    c.bench_function("mpartition/fresh_alloc", |b| {
        b.iter(|| {
            mpartition::rebalance(black_box(inst), k)
                .unwrap()
                .outcome
                .makespan()
        })
    });
    c.bench_function("mpartition/scratch_reuse", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            mpartition::rebalance_scratch(black_box(inst), k, &mut scratch)
                .unwrap()
                .outcome
                .makespan()
        })
    });
    c.bench_function("greedy/scratch_reuse", |b| {
        let mut scratch = Scratch::new();
        b.iter(|| {
            greedy::rebalance_scratch(black_box(inst), k, &mut scratch)
                .unwrap()
                .makespan()
        })
    });

    // Whole-batch throughput across thread counts on the smoke ladder
    // (small enough for criterion's iteration counts).
    let items: Vec<BatchItem> = smoke_ladder(7)
        .into_iter()
        .flat_map(|b| {
            let budget = b.budget;
            b.instances
                .into_iter()
                .map(move |instance| BatchItem { instance, budget })
        })
        .collect();
    for threads in [1usize, 2, 4, 8] {
        c.bench_function(format!("engine_batch/threads_{threads}"), |b| {
            let cfg = EngineConfig::with_threads(threads);
            b.iter(|| {
                solve_batch(black_box(&items), BatchSolver::MPartition, &cfg)
                    .outcomes
                    .len()
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine_scaling
}
criterion_main!(benches);
