//! Zero-cost check for `NoopRecorder`: the instrumented code paths, when
//! monomorphized over the no-op recorder, must run at the same speed as
//! uninstrumented code. Measures a hot loop with per-iteration recorder
//! calls against the identical loop without them and asserts the medians
//! agree within 2%, then benchmarks a real algorithm under both recorders
//! for context.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lrb_core::greedy::{self, ReinsertOrder};
use lrb_instances::generators::{CostModel, GeneratorConfig, PlacementModel, SizeDistribution};
use lrb_obs::{AtomicRecorder, NoopRecorder, Recorder};

/// The uninstrumented hot loop.
fn plain_sum(data: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &v in data {
        acc = acc.wrapping_add(v).rotate_left(7) ^ v;
    }
    acc
}

/// The same loop with per-iteration recorder traffic: with `NoopRecorder`
/// every call monomorphizes to nothing.
fn recorded_sum<R: Recorder>(data: &[u64], rec: &R) -> u64 {
    let mut acc = 0u64;
    for &v in data {
        rec.incr("bench.iterations", 1);
        rec.observe("bench.values", v);
        acc = acc.wrapping_add(v).rotate_left(7) ^ v;
    }
    acc
}

/// Median wall time of `runs` timed executions of `f`.
fn median_nanos(runs: usize, mut f: impl FnMut() -> u64) -> u64 {
    let mut samples: Vec<u64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn assert_noop_is_free(data: &[u64]) {
    // Warm up, then interleave-independent medians over many runs so a
    // single scheduler hiccup cannot decide the outcome.
    let runs = 101;
    for _ in 0..10 {
        black_box(plain_sum(black_box(data)));
        black_box(recorded_sum(black_box(data), &NoopRecorder));
    }
    let plain = median_nanos(runs, || plain_sum(black_box(data)));
    let noop = median_nanos(runs, || recorded_sum(black_box(data), &NoopRecorder));
    // 2% tolerance plus a 20us absolute floor to absorb timer granularity.
    let limit = plain + plain / 50 + 20_000;
    assert!(
        noop <= limit,
        "NoopRecorder overhead above 2%: plain {plain}ns vs noop {noop}ns"
    );
    println!("noop overhead check: plain {plain}ns, noop {noop}ns (limit {limit}ns) — ok");
}

fn bench_obs_overhead(c: &mut Criterion) {
    let data: Vec<u64> = (0..65_536u64)
        .map(|i| i.wrapping_mul(2_654_435_761) % 1_000)
        .collect();
    assert_noop_is_free(&data);

    c.bench_function("hot_loop/plain", |b| b.iter(|| plain_sum(black_box(&data))));
    c.bench_function("hot_loop/noop_recorded", |b| {
        b.iter(|| recorded_sum(black_box(&data), &NoopRecorder))
    });
    c.bench_function("hot_loop/atomic_recorded", |b| {
        let rec = AtomicRecorder::new();
        b.iter(|| recorded_sum(black_box(&data), &rec))
    });

    // A real instrumented algorithm under both recorders.
    let inst = GeneratorConfig {
        n: 200,
        m: 8,
        sizes: SizeDistribution::Pareto {
            scale: 5,
            alpha: 1.4,
        },
        placement: PlacementModel::Skewed { skew: 1.0 },
        costs: CostModel::Unit,
    }
    .generate(7);
    c.bench_function("greedy/noop_recorder", |b| {
        b.iter(|| {
            greedy::rebalance_with_order_recorded(
                &inst,
                20,
                ReinsertOrder::Descending,
                &NoopRecorder,
            )
            .unwrap()
            .0
            .makespan()
        })
    });
    c.bench_function("greedy/atomic_recorder", |b| {
        let rec = AtomicRecorder::new();
        b.iter(|| {
            greedy::rebalance_with_order_recorded(&inst, 20, ReinsertOrder::Descending, &rec)
                .unwrap()
                .0
                .makespan()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(benches);
