//! Custom-harness bench target that regenerates every experiment table
//! (T1–T14). Run with:
//!
//! ```text
//! cargo bench -p lrb-bench --bench tables                # quick scale
//! LRB_SCALE=full cargo bench -p lrb-bench --bench tables # recorded scale
//! ```

use std::time::Instant;

use lrb_bench::{all_experiments, Scale};

fn main() {
    // `cargo bench` passes flags like `--bench`; take any non-flag argument
    // as an experiment-id filter.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let scale = Scale::from_env();
    println!("experiment scale: {scale:?} (set LRB_SCALE=full for recorded scale)\n");

    for (id, run) in all_experiments() {
        if !filter.is_empty() && !filter.iter().any(|f| id.contains(f.as_str())) {
            continue;
        }
        let t0 = Instant::now();
        let table = run(scale);
        let dt = t0.elapsed();
        println!("{}", table.render());
        println!("[{id} took {dt:.2?}]\n");
    }
}
