//! Zero-cost check for `NoopTracer`: span-instrumented code paths, when
//! monomorphized over the no-op tracer, must run at the same speed as
//! untraced code. Measures a hot loop with per-iteration span guards and
//! instants against the identical loop without them and asserts the
//! medians agree within 2%, then benchmarks the traced batch engine under
//! both tracers for context.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lrb_engine::{solve_batch, solve_batch_traced, BatchItem, BatchSolver, EngineConfig};
use lrb_harness::bench::smoke_ladder;
use lrb_obs::{NoopTracer, TraceCollector, Tracer};

/// The untraced hot loop.
fn plain_sum(data: &[u64]) -> u64 {
    let mut acc = 0u64;
    for &v in data {
        acc = acc.wrapping_add(v).rotate_left(7) ^ v;
    }
    acc
}

/// The same loop with per-iteration span traffic: a guard opened and
/// dropped, plus an instant. With `NoopTracer` every call monomorphizes to
/// nothing.
fn traced_sum<T: Tracer>(data: &[u64], tracer: &T) -> u64 {
    let mut acc = 0u64;
    for &v in data {
        let _span = tracer.span_with("bench.iteration", v, false);
        tracer.instant("bench.value", v, false);
        acc = acc.wrapping_add(v).rotate_left(7) ^ v;
    }
    acc
}

/// Median wall time of `runs` timed executions of `f`.
fn median_nanos(runs: usize, mut f: impl FnMut() -> u64) -> u64 {
    let mut samples: Vec<u64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn assert_noop_tracer_is_free(data: &[u64]) {
    // Warm up, then compare independent medians over many runs so a single
    // scheduler hiccup cannot decide the outcome.
    let runs = 101;
    for _ in 0..10 {
        black_box(plain_sum(black_box(data)));
        black_box(traced_sum(black_box(data), &NoopTracer));
    }
    let plain = median_nanos(runs, || plain_sum(black_box(data)));
    let noop = median_nanos(runs, || traced_sum(black_box(data), &NoopTracer));
    // 2% tolerance plus a 20us absolute floor to absorb timer granularity.
    let limit = plain + plain / 50 + 20_000;
    assert!(
        noop <= limit,
        "NoopTracer overhead above 2%: plain {plain}ns vs traced {noop}ns"
    );
    println!("noop tracer check: plain {plain}ns, traced {noop}ns (limit {limit}ns) — ok");
}

fn bench_trace_overhead(c: &mut Criterion) {
    let data: Vec<u64> = (0..65_536u64)
        .map(|i| i.wrapping_mul(2_654_435_761) % 1_000)
        .collect();
    assert_noop_tracer_is_free(&data);

    c.bench_function("hot_loop/plain", |b| b.iter(|| plain_sum(black_box(&data))));
    c.bench_function("hot_loop/noop_traced", |b| {
        b.iter(|| traced_sum(black_box(&data), &NoopTracer))
    });

    // The batch engine untraced vs. under a live collector.
    let batch = &smoke_ladder(7)[0];
    let items: Vec<BatchItem> = batch
        .instances
        .iter()
        .map(|inst| BatchItem {
            instance: inst.clone(),
            budget: batch.budget,
        })
        .collect();
    let cfg = EngineConfig::with_threads(2);
    c.bench_function("engine_batch/untraced", |b| {
        b.iter(|| {
            solve_batch(black_box(&items), BatchSolver::MPartition, &cfg)
                .outcomes
                .len()
        })
    });
    c.bench_function("engine_batch/live_collector", |b| {
        b.iter(|| {
            let mut collector = TraceCollector::new(2);
            solve_batch_traced(
                black_box(&items),
                BatchSolver::MPartition,
                &cfg,
                &mut collector,
            )
            .outcomes
            .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_overhead
}
criterion_main!(benches);
