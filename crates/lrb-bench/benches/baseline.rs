//! F3 — the combinatorial algorithm vs the LP baseline: the paper's "much
//! faster and hence, more likely to be useful in practice" claim (§1),
//! quantified. M-PARTITION should beat the Shmoys–Tardos LP pipeline by
//! orders of magnitude as `n·m` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrb_core::mpartition;
use lrb_instances::generators::{GeneratorConfig, PlacementModel, SizeDistribution};

fn instance(n: usize, m: usize) -> lrb_core::model::Instance {
    GeneratorConfig {
        n,
        m,
        sizes: SizeDistribution::Pareto {
            scale: 5,
            alpha: 1.4,
        },
        placement: PlacementModel::Skewed { skew: 1.0 },
        costs: lrb_instances::generators::CostModel::Unit,
    }
    .generate(11)
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_baseline");
    for &(n, m) in &[(20usize, 4usize), (40, 4), (60, 6)] {
        let inst = instance(n, m);
        let k = n / 8;
        group.bench_with_input(
            BenchmarkId::new("m-partition", format!("{n}x{m}")),
            &inst,
            |b, inst| b.iter(|| mpartition::rebalance(inst, k).unwrap().outcome.makespan()),
        );
        group.bench_with_input(
            BenchmarkId::new("shmoys-tardos-lp", format!("{n}x{m}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    lrb_lp::rebalance(inst, k as u64)
                        .unwrap()
                        .outcome
                        .makespan()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_baseline
}
criterion_main!(benches);
