//! F1 — runtime scaling of GREEDY and M-PARTITION (`O(n log n)`,
//! Theorems 1 and 3).
//!
//! Criterion reports per-`n` times; the figure's claim is that doubling `n`
//! roughly doubles (not quadruples) the time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lrb_core::{greedy, mpartition};
use lrb_instances::generators::{GeneratorConfig, PlacementModel, SizeDistribution};

fn instance(n: usize) -> lrb_core::model::Instance {
    GeneratorConfig {
        n,
        m: (n / 64).max(4),
        sizes: SizeDistribution::Pareto {
            scale: 5,
            alpha: 1.4,
        },
        placement: PlacementModel::Skewed { skew: 1.0 },
        costs: lrb_instances::generators::CostModel::Unit,
    }
    .generate(42)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_scaling");
    for &n in &[1_000usize, 4_000, 16_000, 64_000] {
        let inst = instance(n);
        let k = n / 16;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("greedy", n), &inst, |b, inst| {
            b.iter(|| greedy::rebalance(inst, k).unwrap().makespan())
        });
        group.bench_with_input(BenchmarkId::new("m-partition", n), &inst, |b, inst| {
            b.iter(|| mpartition::rebalance(inst, k).unwrap().outcome.makespan())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
