//! F4 — threshold-search strategies at scale: the plain scan re-evaluates
//! every processor per probe (`O(m log n)` each), the incremental scan pays
//! `O(log n)` per threshold event (the paper's Theorem 3 bound), and the
//! binary search needs only `O(log n)` probes. `k = 0` maximizes the number
//! of thresholds the scans must walk; a loose budget collapses them to a
//! single probe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrb_core::mpartition::{rebalance_with, ThresholdSearch};
use lrb_instances::generators::{GeneratorConfig, PlacementModel, SizeDistribution};

fn instance(n: usize) -> lrb_core::model::Instance {
    GeneratorConfig {
        n,
        m: (n / 32).max(4),
        sizes: SizeDistribution::Exponential { mean: 40.0 },
        placement: PlacementModel::Skewed { skew: 1.2 },
        costs: lrb_instances::generators::CostModel::Unit,
    }
    .generate(17)
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_threshold_search");
    for &n in &[1_000usize, 10_000] {
        let inst = instance(n);
        for (name, search) in [
            ("scan", ThresholdSearch::Scan),
            ("incremental", ThresholdSearch::Incremental),
            ("binary", ThresholdSearch::Binary),
        ] {
            // k = 0: every threshold below "no moves needed" is infeasible,
            // so the scans walk the longest possible prefix.
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/k0"), n),
                &inst,
                |b, inst| b.iter(|| rebalance_with(inst, 0, search).unwrap().threshold),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
