//! F2 — runtime of the arbitrary-cost variant (§3.2, polynomial) vs the
//! PTAS (§4, polynomial in `n` but exponential in `1/ε`).
//!
//! The figure's claim is the paper's own practicality remark: the 1.5
//! algorithm scales; the PTAS blows up as `q = 1/δ` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrb_core::cost_partition;
use lrb_core::ptas::{self, Precision};
use lrb_instances::generators::{CostModel, GeneratorConfig, PlacementModel, SizeDistribution};

fn instance(n: usize) -> lrb_core::model::Instance {
    GeneratorConfig {
        n,
        m: 3,
        sizes: SizeDistribution::Uniform { lo: 10, hi: 100 },
        placement: PlacementModel::Random,
        costs: CostModel::Uniform { lo: 1, hi: 10 },
    }
    .generate(7)
}

fn bench_cost_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_cost_partition");
    for &n in &[50usize, 100, 200, 400] {
        let inst = instance(n);
        let budget = inst.total_cost() / 4;
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                cost_partition::rebalance(inst, budget)
                    .unwrap()
                    .outcome
                    .makespan()
            })
        });
    }
    group.finish();
}

fn bench_ptas(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_ptas");
    // n sweep at fixed precision.
    for &n in &[6usize, 8, 10] {
        let inst = instance(n);
        let budget = inst.total_cost() / 4;
        group.bench_with_input(BenchmarkId::new("n", n), &inst, |b, inst| {
            b.iter(|| {
                ptas::rebalance(inst, budget, Precision::from_q(3))
                    .unwrap()
                    .outcome
                    .makespan()
            })
        });
    }
    // precision sweep at fixed n: exponential blow-up in q.
    let inst = instance(8);
    let budget = inst.total_cost() / 4;
    for &q in &[2u64, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("q", q), &inst, |b, inst| {
            b.iter(|| {
                ptas::rebalance(inst, budget, Precision::from_q(q))
                    .unwrap()
                    .outcome
                    .makespan()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cost_partition, bench_ptas
}
criterion_main!(benches);
