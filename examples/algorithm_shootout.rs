//! Every algorithm in the repository on one instance, side by side.
//!
//! ```text
//! cargo run --release --example algorithm_shootout
//! ```
//!
//! Generates a skewed random instance small enough to solve exactly, then
//! runs GREEDY, M-PARTITION, the Shmoys–Tardos LP baseline, the PTAS, and
//! the exact branch-and-bound across a sweep of move budgets.

use load_rebalance::core::model::Budget;
use load_rebalance::core::ptas::{self, Precision};
use load_rebalance::core::{greedy, mpartition};
use load_rebalance::harness::Table;
use load_rebalance::instances::generators::{
    CostModel, GeneratorConfig, PlacementModel, SizeDistribution,
};

fn main() {
    let cfg = GeneratorConfig {
        n: 14,
        m: 4,
        sizes: SizeDistribution::Pareto {
            scale: 5,
            alpha: 1.4,
        },
        placement: PlacementModel::Skewed { skew: 1.5 },
        costs: CostModel::Unit,
    };
    let inst = cfg.generate(2026);
    println!("instance: n=14 jobs (Pareto sizes), m=4 processors, skewed placement");
    println!(
        "initial loads: {:?} (makespan {})\n",
        inst.initial_loads(),
        inst.initial_makespan()
    );

    let mut table = Table::new(
        "makespan by algorithm and move budget k",
        &[
            "k",
            "GREEDY",
            "M-PARTITION",
            "ST-LP",
            "PTAS q=4",
            "exact OPT",
        ],
    );
    for k in [1usize, 2, 4, 7, 14] {
        let g = greedy::rebalance(&inst, k).expect("greedy").makespan();
        let p = mpartition::rebalance(&inst, k)
            .expect("m-partition")
            .outcome
            .makespan();
        let st = load_rebalance::lp::rebalance(&inst, k as u64)
            .expect("st-lp")
            .outcome
            .makespan();
        let pt = ptas::rebalance(&inst, k as u64, Precision::from_q(4))
            .expect("ptas")
            .outcome
            .makespan();
        let opt = load_rebalance::exact::solve(&inst, Budget::Moves(k)).makespan;
        table.row(&[
            k.to_string(),
            g.to_string(),
            p.to_string(),
            st.to_string(),
            pt.to_string(),
            opt.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "guarantees: GREEDY <= (2-1/m)OPT, M-PARTITION <= 1.5 OPT,\n\
         ST-LP <= 2 OPT, PTAS <= (1+5/q) OPT; the exact column is the\n\
         branch-and-bound oracle the experiments measure against."
    );
}
