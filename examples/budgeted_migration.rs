//! Arbitrary relocation costs (§3.2 and §4): processes with memory
//! footprints, migrated under a total-cost budget.
//!
//! ```text
//! cargo run --release --example budgeted_migration
//! ```
//!
//! A small multiprocessor where each process's migration cost is its
//! memory footprint. Sweeps the budget and compares the practical
//! cost-PARTITION algorithm against the PTAS and the exact optimum.

use load_rebalance::core::cost_partition;
use load_rebalance::core::model::{Instance, Job};
use load_rebalance::core::ptas::{self, Precision};
use load_rebalance::harness::Table;

fn main() {
    // (cpu demand, memory footprint) pairs; everything starts on CPUs 0-1.
    let procs = [
        (45u64, 9u64),
        (38, 2),
        (33, 7),
        (29, 1),
        (21, 4),
        (18, 2),
        (12, 1),
        (9, 3),
    ];
    let jobs: Vec<Job> = procs.iter().map(|&(s, c)| Job::with_cost(s, c)).collect();
    let initial = vec![0, 0, 0, 0, 1, 1, 1, 1];
    let inst = Instance::new(jobs, initial, 3).expect("valid instance");

    println!(
        "initial loads: {:?} (makespan {})",
        inst.initial_loads(),
        inst.initial_makespan()
    );
    println!("migration cost of a process = its memory footprint\n");

    let mut table = Table::new(
        "makespan vs migration budget",
        &["budget", "cost-PARTITION", "PTAS (eps=1)", "exact OPT"],
    );
    for budget in [0u64, 2, 4, 8, 16] {
        let cp = cost_partition::rebalance(&inst, budget).expect("cost partition runs");
        let pt = ptas::rebalance(&inst, budget, Precision::from_q(5)).expect("ptas runs");
        let opt = load_rebalance::exact::optimal_makespan_cost(&inst, budget);
        assert!(cp.outcome.cost() <= budget);
        assert!(pt.outcome.cost() <= budget);
        table.row(&[
            budget.to_string(),
            cp.outcome.makespan().to_string(),
            pt.outcome.makespan().to_string(),
            opt.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "cost-PARTITION guarantees 1.5x OPT in O(n log n)-ish time;\n\
         the PTAS guarantees (1+eps)x OPT but pays an exponential-in-1/eps\n\
         configuration DP — exactly the trade-off the paper describes."
    );
}
