//! Quickstart: sixty seconds with the load rebalancing API.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a small unbalanced cluster, then rebalances it with the paper's
//! two unit-cost algorithms under a move budget of `k = 3`.

use load_rebalance::core::model::Budget;
use load_rebalance::core::model::Instance;
use load_rebalance::core::{bounds, greedy, mpartition};

fn main() {
    // Ten jobs on four processors; processor 0 is badly overloaded.
    let sizes = [40, 31, 28, 22, 17, 13, 11, 8, 5, 2];
    let initial = vec![0, 0, 0, 0, 0, 0, 1, 1, 2, 3];
    let inst = Instance::from_sizes(&sizes, initial, 4).expect("valid instance");
    let k = 3;

    println!("initial loads:    {:?}", inst.initial_loads());
    println!("initial makespan: {}", inst.initial_makespan());
    println!("move budget k:    {k}");
    println!(
        "lower bound:      {}\n",
        bounds::lower_bound(&inst, Budget::Moves(k))
    );

    // GREEDY (paper section 2): 2 - 1/m approximation, O(n log n).
    let g = greedy::rebalance(&inst, k).expect("greedy runs");
    println!(
        "GREEDY:      makespan {:>3}, moved jobs {:?}",
        g.makespan(),
        g.moved()
    );

    // M-PARTITION (paper section 3): 1.5 approximation, same runtime.
    let p = mpartition::rebalance(&inst, k).expect("m-partition runs");
    println!(
        "M-PARTITION: makespan {:>3}, moved jobs {:?} (threshold {})",
        p.outcome.makespan(),
        p.outcome.moved(),
        p.threshold
    );

    let loads = inst
        .loads_of(p.outcome.assignment())
        .expect("valid assignment");
    println!("\nrebalanced loads: {loads:?}");
    assert!(p.outcome.moves() <= k);
}
