//! The paper's motivating scenario (§1): a web-server farm whose website
//! loads drift over time, rebalanced under a bounded migration budget.
//!
//! ```text
//! cargo run --release --example webfarm
//! ```
//!
//! Compares four policies over 150 epochs of drift and flash crowds:
//! doing nothing, the paper's GREEDY and M-PARTITION with 4 migrations per
//! epoch, and unlimited LPT rebalancing.

use load_rebalance::core::model::Budget;
use load_rebalance::harness::Table;
use load_rebalance::sim::{
    run_farm, FarmConfig, FullRebalance, GreedyPolicy, MPartitionPolicy, MigrationCost,
    NoRebalance, Policy, WorkloadConfig,
};

fn main() {
    // Exponential base loads rather than the default heavy Pareto tail:
    // with a single dominant website the makespan is irreducible and every
    // policy ties — realistic, but not instructive for an example.
    let workload = WorkloadConfig {
        base: load_rebalance::instances::SizeDistribution::Exponential { mean: 30.0 },
        ..WorkloadConfig::default_web(200)
    };
    let cfg = FarmConfig {
        num_servers: 10,
        epochs: 150,
        budget: Budget::Moves(4),
        workload,
        migration_cost: MigrationCost::Unit,
        seed: 7,
    };

    let mut table = Table::new(
        "web farm: 200 sites / 10 servers / 150 epochs / 4 moves per epoch",
        &[
            "policy",
            "mean imbalance",
            "p95 imbalance",
            "total migrations",
        ],
    );
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(NoRebalance),
        Box::new(GreedyPolicy),
        Box::new(MPartitionPolicy),
        Box::new(FullRebalance),
    ];
    for mut policy in policies {
        let report = run_farm(&cfg, policy.as_mut());
        table.row(&[
            report.policy.clone(),
            format!("{:.3}", report.mean_imbalance()),
            format!("{:.3}", report.percentile_imbalance(95.0)),
            report.total_migrations().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "imbalance = makespan / average load per epoch; 1.0 is perfect.\n\
         The point of the paper: a tiny migration budget recovers most of\n\
         full rebalancing's benefit at a fraction of the migrations."
    );
}
