//! The Constrained Load Rebalancing variant (§5): jobs restricted to
//! subsets of processors — think data-locality or licensing constraints.
//!
//! ```text
//! cargo run --release --example constrained_rebalance
//! ```
//!
//! The paper proves no polynomial algorithm beats ratio 3/2 here and names
//! the Shmoys–Tardos 2-approximation as the best known upper bound; this
//! example runs that algorithm, the constrained GREEDY heuristic, and the
//! exact oracle side by side, with and without the constraints.

use load_rebalance::core::constrained::{self, ConstrainedInstance};
use load_rebalance::core::model::{Budget, Instance};
use load_rebalance::harness::Table;

fn main() {
    // Six services on four machines, piled on machines 0-1. Services 0 and
    // 1 are licensed for machines {0,1} only; service 2 needs machine-local
    // data available on {0,2}; the rest can run anywhere.
    let base = Instance::from_sizes(&[30, 26, 22, 18, 14, 10], vec![0, 0, 0, 1, 1, 1], 4)
        .expect("valid instance");
    let eligibility = vec![
        vec![0, 1],
        vec![0, 1],
        vec![0, 2],
        vec![0, 1, 2, 3],
        vec![0, 1, 2, 3],
        vec![0, 1, 2, 3],
    ];
    let cinst = ConstrainedInstance::new(base.clone(), eligibility).expect("valid constraints");
    let free = ConstrainedInstance::unconstrained(base.clone());

    println!(
        "initial loads: {:?} (makespan {})\n",
        base.initial_loads(),
        base.initial_makespan()
    );

    let mut table = Table::new(
        "constrained vs unconstrained rebalancing (k = 3 moves)",
        &["setting", "greedy", "ST-LP 2-approx", "exact OPT"],
    );
    let k = 3usize;
    for (name, c) in [("constrained", &cinst), ("unconstrained", &free)] {
        let g = constrained::greedy(c, k).expect("greedy runs");
        let lp = load_rebalance::lp::constrained::rebalance(c, k as u64).expect("lp runs");
        let (opt, _) = load_rebalance::exact::constrained::solve(c, Budget::Moves(k));
        assert!(c.respects(g.assignment()));
        assert!(c.respects(lp.outcome.assignment()));
        table.row(&[
            name.to_string(),
            g.makespan().to_string(),
            lp.outcome.makespan().to_string(),
            opt.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Eligibility constraints push the optimum up: the licensed services\n\
         cannot leave machines 0-1, so the makespan floor rises. The paper\n\
         (Corollary 1) shows approximating below 3/2 is NP-hard here; the\n\
         LP rounding stays within its factor-2 guarantee."
    );
}
