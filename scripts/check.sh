#!/usr/bin/env bash
# Offline-friendly CI gate: build, test, format, lint.
#
# Everything runs against the vendored path dependencies in vendor/, so no
# network or registry access is needed. Every step is a hard gate.
#
#   scripts/check.sh          # full gate

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# --locked doubles as the lockfile-drift gate: a stale Cargo.lock fails the
# build instead of being silently rewritten.
run cargo build --release --workspace --offline --locked
# The workspace [profile.test] sets overflow-checks = true, so this whole
# suite runs with integer-overflow detection on.
run cargo test -q --workspace --offline

# Certification suites: the exact-oracle differential tests and the
# metamorphic property tests are the PR-3 quality gate — run them explicitly
# (they are part of the workspace run above, but a bare name here makes a
# regression impossible to miss in the log).
run cargo test -q --release --offline --test differential
run cargo test -q --release --offline --test metamorphic
# Online-vs-batch equivalence (PR-5): every checkpoint of the streaming
# subsystem must be bit-identical to a from-scratch batch solve at every
# engine thread count. Seeded streams, ~a second in release — well inside
# the gate's wall-clock budget.
run cargo test -q --release --offline --test online_equivalence
# Heterogeneous-machine certification (PR-8): the speed-scaled solvers are
# certified cell-by-cell against the uniform-machine exact oracle, and the
# metamorphic families (equal-speeds bit-identity, uniform speed scaling,
# relabeling, engine thread invariance, path independence) must all hold.
run cargo test -q --release --offline --test differential_hetero
run cargo test -q --release --offline --test metamorphic_hetero
# Competitive-ratio lab (PR-9): every short event stream is replayed
# through all three migration policies against the incremental exact
# oracle (realized makespan never beats OPT, certificates never
# overspent, the Maack 8/3 envelope holds), and the metamorphic axes
# (size scaling, arrival permutation, equal-speeds collapse, engine
# thread invariance) must all hold.
run cargo test -q --release --offline --test differential_online
run cargo test -q --release --offline --test metamorphic_online_policies

# Bench smoke test: `lrb bench --smoke` must finish quickly and emit a
# schema-versioned BENCH_4-style report with a thread-scaling curve.
echo "==> bench smoke test (lrb bench --smoke)"
bench_tmp="$(mktemp)"
trap 'rm -f "$bench_tmp"' EXIT
cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    bench --smoke --threads 1,2 --out "$bench_tmp" >/dev/null
if ! grep -q '"schema_version": 4' "$bench_tmp"; then
    echo "bench smoke test failed: schema_version 4 missing" >&2
    exit 1
fi
if ! grep -q '"thread_curve"' "$bench_tmp"; then
    echo "bench smoke test failed: no thread_curve in report" >&2
    exit 1
fi

# Baseline comparator gate: a report compared against itself passes; the
# same report with its throughput zeroed out must trip the regression
# detector and exit nonzero.
echo "==> bench baseline comparator (lrb bench --baseline)"
bench_slow_tmp="$(mktemp)"
trap 'rm -f "$bench_tmp" "$bench_slow_tmp"' EXIT
cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    bench --baseline "$bench_tmp" --compare "$bench_tmp" >/dev/null
# Committed-baseline gate: a fresh smoke report must stay within a
# generous threshold of the committed BENCH_4.json (same scenario, seed,
# and thread list; the threads=2 point is oversubscribed on small hosts
# and never gates). 0.5 absorbs host-to-host hardware differences, and
# best-of-three absorbs transient load spikes on shared runners — only a
# regression that persists across all three runs gates.
baseline_ok=""
for attempt in 1 2 3; do
    cargo run -q --release --offline -p lrb-cli --bin lrb -- \
        bench --smoke --threads 1,2 --out "$bench_tmp" >/dev/null
    if cargo run -q --release --offline -p lrb-cli --bin lrb -- \
        bench --baseline BENCH_4.json --compare "$bench_tmp" --threshold 0.5 \
        >/dev/null 2>&1; then
        baseline_ok=1
        break
    fi
    echo "    committed-baseline attempt $attempt regressed; retrying" >&2
done
if [ -z "$baseline_ok" ]; then
    echo "bench committed-baseline gate failed: regression vs BENCH_4.json persisted across 3 runs" >&2
    exit 1
fi
sed 's/"throughput_per_sec": [0-9][0-9.eE+-]*/"throughput_per_sec": 0.001/' \
    "$bench_tmp" > "$bench_slow_tmp"
if cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    bench --baseline "$bench_tmp" --compare "$bench_slow_tmp" >/dev/null 2>&1; then
    echo "bench comparator failed: injected regression was not detected" >&2
    exit 1
fi

# Trace smoke test: `lrb trace` must emit a schema-versioned Chrome
# trace-event timeline (Perfetto-loadable) with engine worker spans.
echo "==> trace smoke test (lrb trace --scenario smoke_ladder --threads 4)"
trace_tmp="$(mktemp)"
trap 'rm -f "$bench_tmp" "$bench_slow_tmp" "$trace_tmp"' EXIT
cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    trace --scenario smoke_ladder --threads 4 --seed 7 --out "$trace_tmp" >/dev/null
if ! grep -q '"schema_version": 1' "$trace_tmp"; then
    echo "trace smoke test failed: schema_version 1 missing" >&2
    exit 1
fi
if ! grep -q '"traceEvents"' "$trace_tmp"; then
    echo "trace smoke test failed: no traceEvents in export" >&2
    exit 1
fi
if ! grep -q 'engine.worker' "$trace_tmp"; then
    echo "trace smoke test failed: no engine.worker spans" >&2
    exit 1
fi

# Chaos smoke test: the fault-injection sweep must exit 0 and emit a
# schema-versioned JSON degradation report.
echo "==> chaos smoke test (lrb chaos --epochs 50 --crash-rate 0.1)"
chaos_out="$(cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    chaos --epochs 50 --crash-rate 0.1)"
if ! grep -q '"schema_version"' <<<"$chaos_out"; then
    echo "chaos smoke test failed: no schema_version in output" >&2
    exit 1
fi

# Online smoke test: a short streaming run must emit a schema-versioned
# ONLINE_1-style report with a per-epoch curve. 10 epochs on 4 servers
# finishes in well under a second.
echo "==> online smoke test (lrb online --servers 4 --epochs 10 --moves 3)"
online_tmp="$(mktemp)"
trap 'rm -f "$bench_tmp" "$bench_slow_tmp" "$trace_tmp" "$online_tmp"' EXIT
cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    online --servers 4 --epochs 10 --moves 3 --out "$online_tmp" >/dev/null
if ! grep -q '"schema_version": 1' "$online_tmp"; then
    echo "online smoke test failed: schema_version 1 missing" >&2
    exit 1
fi
if ! grep -q '"epoch_curve"' "$online_tmp"; then
    echo "online smoke test failed: no epoch_curve in report" >&2
    exit 1
fi

# Hetero smoke test (PR-8): the heterogeneous-machine evaluation must exit
# 0 and emit a schema-versioned HETERO_1-style report whose report
# self-validation passed (the CLI validates before printing), with the
# path-independence section present and zero solver budget violations.
echo "==> hetero smoke test (lrb hetero --smoke)"
hetero_tmp="$(mktemp)"
trap 'rm -f "$bench_tmp" "$bench_slow_tmp" "$trace_tmp" "$online_tmp" "$hetero_tmp"' EXIT
cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    hetero --smoke --out "$hetero_tmp" >/dev/null
if ! grep -q '"schema_version": 1' "$hetero_tmp"; then
    echo "hetero smoke test failed: schema_version 1 missing" >&2
    exit 1
fi
if ! grep -q '"path_independence"' "$hetero_tmp"; then
    echo "hetero smoke test failed: no path_independence section" >&2
    exit 1
fi
if grep -q '"budget_violations": [^0]' "$hetero_tmp"; then
    echo "hetero smoke test failed: solver exceeded its move budget" >&2
    exit 1
fi

# Compete smoke test (PR-9): the competitive lab must exit 0 (it fails
# loudly on any certificate overspend or a Maack 8/3 envelope break) and
# emit a schema-versioned COMPETE_1-style policy x adversary ratio grid.
echo "==> compete smoke test (lrb compete --smoke)"
compete_tmp="$(mktemp)"
trap 'rm -f "$bench_tmp" "$bench_slow_tmp" "$trace_tmp" "$online_tmp" "$hetero_tmp" "$compete_tmp"' EXIT
cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    compete --smoke --out "$compete_tmp" >/dev/null
if ! grep -q '"schema_version": 1' "$compete_tmp"; then
    echo "compete smoke test failed: schema_version 1 missing" >&2
    exit 1
fi
if ! grep -q '"grid"' "$compete_tmp"; then
    echo "compete smoke test failed: no policy x adversary grid" >&2
    exit 1
fi
if grep -q '"certificate_overspend": [^0]' "$compete_tmp"; then
    echo "compete smoke test failed: a policy overspent its certificate" >&2
    exit 1
fi

# Serve smoke gate (PR-7): the daemon must survive a SIGKILL mid-load and
# recover bit-identically. Start it, drive ~100 events through the retrying
# loadgen client, SIGKILL, restart, and assert replay equivalence — the
# drill exits nonzero on any lost acked event, resurrected departed key, or
# live-vs-recovered digest divergence. Two cycles: cycle 1 is killed,
# cycle 2 verifies the survivors, shuts down cleanly, and compares the live
# digests against an offline recovery of the same data directory.
echo "==> serve smoke gate (lrb loadgen --drill, SIGKILL + replay equivalence)"
serve_tmp="$(mktemp -d)"
trap 'rm -f "$bench_tmp" "$bench_slow_tmp" "$trace_tmp" "$online_tmp" "$hetero_tmp" "$compete_tmp"; rm -rf "$serve_tmp"' EXIT
drill_out="$(cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    loadgen --drill --data "$serve_tmp" --cycles 2 --tenants 5 --events 20 \
    --workers 2 --snapshot-every 16 --kill-lo 40 --kill-hi 150 --seed 11)"
echo "    $drill_out"
if ! grep -q 'replay_identical=true' <<<"$drill_out"; then
    echo "serve smoke gate failed: restart replay diverged from live state" >&2
    exit 1
fi
if ! grep -q 'lost=0 ghosts=0' <<<"$drill_out"; then
    echo "serve smoke gate failed: acked events lost or resurrected" >&2
    exit 1
fi
# The snapshot left on disk must carry the pinned serve schema, and offline
# digest recovery must be deterministic.
if ! grep -q '"schema_version": 1' "$serve_tmp/snapshot.json"; then
    echo "serve smoke gate failed: snapshot missing schema_version 1" >&2
    exit 1
fi
digest_a="$(cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    serve --data "$serve_tmp" --digest)"
digest_b="$(cargo run -q --release --offline -p lrb-cli --bin lrb -- \
    serve --data "$serve_tmp" --digest)"
if [ "$digest_a" != "$digest_b" ] || ! grep -q '"digests"' <<<"$digest_a"; then
    echo "serve smoke gate failed: offline digest recovery is not deterministic" >&2
    exit 1
fi

# Static invariant gate (PR-5, semantic passes PR-10): lrb-lint must find
# zero violations of the workspace rules — the lexical layer
# (no-nondeterminism, no-panic-core, checked-arith, obs-name-registry,
# unsafe-audit, schema-key-pinning) plus the call-graph passes
# (panic-reachability, nondeterminism taint, checked-arith dataflow,
# stale-suppression) — and its LINT_1.json report must carry the pinned
# schema over a non-vacuous call graph.
lint_tmp="$(mktemp -d)"
trap 'rm -f "$bench_tmp" "$bench_slow_tmp" "$trace_tmp" "$online_tmp" "$hetero_tmp" "$compete_tmp"; rm -rf "$serve_tmp" "$lint_tmp"' EXIT
run cargo run -q --release --offline -p lrb-lint --bin lrb-lint -- \
    --root . --report "$lint_tmp/LINT_1.json"
if ! grep -q '"schema_version": 1' "$lint_tmp/LINT_1.json"; then
    echo "lint report gate failed: missing schema_version 1" >&2
    exit 1
fi
if ! grep -q '"findings": \[\],' "$lint_tmp/LINT_1.json"; then
    echo "lint report gate failed: findings are not empty" >&2
    exit 1
fi
if grep -q '"edges": 0' "$lint_tmp/LINT_1.json"; then
    echo "lint report gate failed: empty call graph (vacuous analysis)" >&2
    exit 1
fi

# Concurrency-schedule gate (PR-5): the work-stealing engine must produce
# bit-identical results under seeded pathological schedules (steal storms,
# single-slot stripes, adversarial yields) across 8 seeds.
run cargo run -q --release --offline -p lrb-lint --bin lrb-lint -- \
    --schedules --seeds 0..8 --threads 2,4

# Zero-cost tracing gate: the NoopTracer-monomorphized hot loop must stay
# within 2% of the untraced loop (the bench asserts and aborts otherwise).
run cargo bench -q -p lrb-bench --bench trace_overhead --offline

run cargo fmt --all --check

run cargo clippy --workspace --all-targets --offline -- -D warnings

echo "all checks passed"
